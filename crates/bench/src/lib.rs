//! Shared harness for regenerating the paper's figures.
//!
//! Runs [`FigureSpec`] sweeps in parallel across worker threads, prints
//! paper-style latency/throughput series, and records CSV files that
//! EXPERIMENTS.md references.

use std::io::Write as _;
use std::path::Path;
use std::str::FromStr;
use wormsim::presets::FigureSpec;
use wormsim::{format_results_table, format_sweep_csv, MeasurementSchedule, RunResult};

pub mod plot;
pub mod cli;
mod reference;
pub use reference::{paper_reference, PaperClaim};

/// Command-line options shared by the figure binaries.
#[derive(Clone, Debug)]
pub struct HarnessOptions {
    /// Measurement schedule (`--quick` selects the short one).
    pub schedule: MeasurementSchedule,
    /// Base RNG seed (`--seed N`).
    pub seed: u64,
    /// Output directory for CSV files (`--out DIR`, default `results`).
    pub out_dir: String,
    /// Worker threads (`--threads N`, default: all cores).
    pub threads: usize,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            schedule: MeasurementSchedule::default(),
            seed: 1993,
            out_dir: "results".to_owned(),
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        }
    }
}

impl HarnessOptions {
    /// Parses `--quick`, `--saturation`, `--seed N`, `--out DIR`,
    /// `--threads N` from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn from_args() -> Self {
        let mut options = HarnessOptions::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => options.schedule = MeasurementSchedule::quick(),
                "--saturation" => options.schedule = MeasurementSchedule::saturation(),
                "--seed" => {
                    let v = args.next().expect("--seed needs a value");
                    options.seed = u64::from_str(&v).expect("--seed needs an integer");
                }
                "--out" => {
                    options.out_dir = args.next().expect("--out needs a directory");
                }
                "--threads" => {
                    let v = args.next().expect("--threads needs a value");
                    options.threads = usize::from_str(&v).expect("--threads needs an integer");
                }
                other => panic!(
                    "unknown argument '{other}' (expected --quick, --saturation, --seed N, --out DIR, --threads N)"
                ),
            }
        }
        options
    }
}

/// Runs every `(algorithm, load)` experiment of a figure in parallel and
/// returns results in deterministic order (algorithm-major, load-minor).
pub fn run_figure(spec: &FigureSpec, options: &HarnessOptions) -> Vec<RunResult> {
    let experiments = wormsim::presets::experiments_for(spec, options.schedule, options.seed);
    let total = experiments.len();
    let done = std::sync::atomic::AtomicUsize::new(0);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<parking_lot::Mutex<Option<RunResult>>> =
        (0..total).map(|_| parking_lot::Mutex::new(None)).collect();

    crossbeam::thread::scope(|scope| {
        for _ in 0..options.threads.max(1) {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let result = experiments[i]
                    .run()
                    .unwrap_or_else(|e| panic!("experiment {i} failed: {e}"));
                *slots[i].lock() = Some(result);
                let completed = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                eprint!("\r  {completed}/{total} points");
                let _ = std::io::stderr().flush();
            });
        }
    })
    .expect("worker threads never panic");
    eprintln!();

    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("all slots filled"))
        .collect()
}

/// Prints the figure in the paper's two-panel form (latency vs offered
/// load, achieved vs offered throughput), one series per algorithm.
pub fn print_figure(spec: &FigureSpec, results: &[RunResult]) {
    println!("== {} ({}) ==", spec.title, spec.id);
    let loads = &spec.loads;
    println!("\nAverage latency (cycles) vs offered channel utilization:");
    print!("{:>8}", "offered");
    for algo in &spec.algorithms {
        print!("{:>10}", algo.name());
    }
    println!();
    for (li, load) in loads.iter().enumerate() {
        print!("{load:>8.2}");
        for (ai, _) in spec.algorithms.iter().enumerate() {
            let r = &results[ai * loads.len() + li];
            print!("{:>10.1}", r.latency.mean());
        }
        println!();
    }
    println!("\nAchieved channel utilization vs offered channel utilization:");
    print!("{:>8}", "offered");
    for algo in &spec.algorithms {
        print!("{:>10}", algo.name());
    }
    println!();
    for (li, load) in loads.iter().enumerate() {
        print!("{load:>8.2}");
        for (ai, _) in spec.algorithms.iter().enumerate() {
            let r = &results[ai * loads.len() + li];
            print!("{:>10.4}", r.achieved_utilization);
        }
        println!();
    }
    println!("\nPeak achieved utilization per algorithm:");
    for (ai, algo) in spec.algorithms.iter().enumerate() {
        let series = &results[ai * loads.len()..(ai + 1) * loads.len()];
        let best = series
            .iter()
            .max_by(|a, b| {
                a.achieved_utilization
                    .partial_cmp(&b.achieved_utilization)
                    .expect("finite")
            })
            .expect("non-empty series");
        println!(
            "  {:>6}: {:.3} (at offered {:.2})",
            algo.name(),
            best.achieved_utilization,
            best.offered_load
        );
    }
    // ASCII renditions of the two panels, in the paper's style.
    let latency_series: Vec<plot::Series> = spec
        .algorithms
        .iter()
        .enumerate()
        .map(|(ai, algo)| plot::Series {
            label: algo.name().to_owned(),
            marker: plot::MARKERS[ai % plot::MARKERS.len()],
            points: loads
                .iter()
                .enumerate()
                .map(|(li, &load)| (load, results[ai * loads.len() + li].latency.mean()))
                .collect(),
        })
        .collect();
    println!(
        "{}",
        plot::render("Average latency (cycles)", &latency_series, 64, 18)
    );
    let util_series: Vec<plot::Series> = latency_series
        .iter()
        .enumerate()
        .map(|(ai, s)| plot::Series {
            label: s.label.clone(),
            marker: s.marker,
            points: loads
                .iter()
                .enumerate()
                .map(|(li, &load)| {
                    (load, results[ai * loads.len() + li].achieved_utilization)
                })
                .collect(),
        })
        .collect();
    println!(
        "{}",
        plot::render("Achieved channel utilization", &util_series, 64, 18)
    );
    println!("{}", format_results_table(results));
}

/// Prints the paper's quoted numbers next to ours for the figure.
pub fn print_paper_comparison(spec_id: &str, results: &[RunResult]) {
    let claims = paper_reference(spec_id);
    if claims.is_empty() {
        return;
    }
    println!("Paper vs measured:");
    for claim in claims {
        let measured = (claim.measure)(results);
        println!(
            "  {:<62} paper {:>6}  measured {:>7.3}",
            claim.what, claim.paper_value, measured
        );
    }
    println!();
}

/// Writes the sweep CSV under the output directory, returning the path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(spec_id: &str, results: &[RunResult], out_dir: &str) -> std::io::Result<String> {
    std::fs::create_dir_all(out_dir)?;
    let path = Path::new(out_dir).join(format!("{spec_id}.csv"));
    std::fs::write(&path, format_sweep_csv(results))?;
    Ok(path.display().to_string())
}

/// Peak achieved utilization of one algorithm's series.
pub fn peak_utilization(results: &[RunResult], algorithm: &str) -> f64 {
    results
        .iter()
        .filter(|r| r.algorithm == algorithm)
        .map(|r| r.achieved_utilization)
        .fold(0.0, f64::max)
}

/// Latency of one algorithm at the offered load closest to `load`.
pub fn latency_at(results: &[RunResult], algorithm: &str, load: f64) -> f64 {
    results
        .iter()
        .filter(|r| r.algorithm == algorithm)
        .min_by(|a, b| {
            (a.offered_load - load)
                .abs()
                .partial_cmp(&(b.offered_load - load).abs())
                .expect("finite")
        })
        .map_or(f64::NAN, |r| r.latency.mean())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormsim::presets;

    #[test]
    fn harness_runs_a_tiny_figure() {
        // A reduced fig3: two algorithms, two loads, quick schedule.
        let mut spec = presets::fig3();
        spec.loads = vec![0.1, 0.3];
        spec.algorithms = vec![
            wormsim::AlgorithmKind::Ecube,
            wormsim::AlgorithmKind::PositiveHop,
        ];
        let options = HarnessOptions {
            schedule: MeasurementSchedule::quick(),
            seed: 5,
            out_dir: std::env::temp_dir().join("wormsim-test").display().to_string(),
            threads: 4,
        };
        let results = run_figure(&spec, &options);
        assert_eq!(results.len(), 4);
        // Ordering: algorithm-major, load-minor.
        assert_eq!(results[0].algorithm, "ecube");
        assert!((results[0].offered_load - 0.1).abs() < 1e-12);
        assert_eq!(results[3].algorithm, "phop");
        assert!((results[3].offered_load - 0.3).abs() < 1e-12);
        let path = write_csv("test", &results, &options.out_dir).unwrap();
        let csv = std::fs::read_to_string(path).unwrap();
        assert_eq!(csv.lines().count(), 5);
        assert!(peak_utilization(&results, "phop") > 0.2);
        assert!(latency_at(&results, "ecube", 0.1) > 15.0);
    }
}

//! Shared harness for regenerating the paper's figures.
//!
//! Runs [`FigureSpec`] sweeps in parallel across worker threads, prints
//! paper-style latency/throughput series, and records CSV files that
//! EXPERIMENTS.md references.
//!
//! The harness is crash-safe: every completed point is checkpointed to a
//! [`Journal`] (atomic JSONL, keyed by the point's configuration digest),
//! worker panics are contained to the point that raised them, transient
//! outcomes retry with seed-jittered backoff, and SIGINT drains in-flight
//! points before flushing partial results and printing a ready-to-paste
//! resume command. See `docs/ROBUSTNESS.md`.
//!
//! Execution is pluggable behind the [`WorkerBackend`] trait: the default
//! [`LocalThreadBackend`] runs points on an in-process pool, while
//! [`RemoteBackend`] shards them across `wormsim-worker` processes over
//! HTTP. Either way the deterministic committer journals completed points
//! strictly in schedule order, so the merged CSV and journal are
//! byte-identical no matter how the sweep was sharded. See
//! `docs/DISTRIBUTION.md`.

use std::collections::VecDeque;
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use wormsim::presets::FigureSpec;
use wormsim::topology::Topology;
use wormsim::{
    format_results_table, format_sweep_csv, CancelToken, Experiment, ExperimentError,
    MeasurementSchedule, ObserveConfig, RunOutcome, RunResult,
};

mod backend;
mod chaos;
pub mod cli;
mod committer;
mod http;
mod journal;
pub mod plot;
mod reference;
mod remote;
mod supervisor;
pub mod worker;
pub use backend::{
    BackendChoice, BackendError, LocalThreadBackend, PointJob, PointStatus, WorkHandle,
    WorkerBackend,
};
pub use chaos::{ChaosPlan, ChaosPlanError};
pub use journal::{Journal, JournalEntry, JournalError, SalvagedLine};
pub use reference::{paper_reference, PaperClaim};
pub use remote::RemoteBackend;
pub use supervisor::{QuarantineRecord, SupervisionReport};

use committer::Committer;
use supervisor::{Event, SupervisePolicy, Supervisor};
use wormsim::observe::JsonObject;

/// The token the installed SIGINT handler trips. Process-global because a
/// signal handler has no other way to reach session state.
static SIGINT_TOKEN: OnceLock<CancelToken> = OnceLock::new();

const SIGINT: i32 = 2;

extern "C" fn on_sigint(_signum: i32) {
    // Only async-signal-safe work here: one atomic store through the
    // token. No allocation, no locks, no I/O.
    if let Some(token) = SIGINT_TOKEN.get() {
        token.cancel();
    }
}

extern "C" {
    // Vendored libc-free binding: `signal(2)` is in every libc this
    // simulator builds against, and the harness only needs this one hook.
    fn signal(signum: i32, handler: usize) -> usize;
}

/// Routes SIGINT (Ctrl-C) to `token` instead of killing the process, so a
/// sweep can stop dispatching, drain in-flight points, flush the journal
/// and partial CSVs, and print a resume command. First caller wins: the
/// token registered first stays registered for the process lifetime.
pub fn install_sigint_handler(token: &CancelToken) {
    let _ = SIGINT_TOKEN.set(token.clone());
    // SAFETY: `on_sigint` is async-signal-safe (a single atomic store) and
    // has the exact `extern "C" fn(i32)` shape signal(2) expects; the
    // handler address stays valid for the process lifetime.
    unsafe {
        signal(SIGINT, on_sigint as *const () as usize);
    }
}

/// Command-line options shared by the figure binaries.
#[derive(Clone, Debug)]
pub struct SweepOptions {
    /// Measurement schedule (`--quick` selects the short one).
    pub schedule: MeasurementSchedule,
    /// Topology override (`--topo torus:32x32`, `--topo 8^3`, ...); `None`
    /// keeps each figure's own network (the paper's 16×16 torus), so
    /// default goldens and resume journals stay bit-identical.
    pub topology: Option<Topology>,
    /// Base RNG seed (`--seed N`).
    pub seed: u64,
    /// Output directory for CSV files (`--out DIR`, default `results`).
    pub out_dir: String,
    /// Worker threads (`--threads N`, default: all cores).
    pub threads: usize,
    /// Directory for per-run sample streams and manifests
    /// (`--observe DIR`); `None` disables them.
    pub observe_dir: Option<String>,
    /// Directory for per-run JSONL event traces (`--trace-out DIR`);
    /// `None` disables them.
    pub trace_dir: Option<String>,
    /// Cycles between time-series samples (`--sample-every N`, 0 = the
    /// observe layer's default stride).
    pub sample_every: u64,
    /// Deep telemetry (`--metrics`): per-channel/per-VC-class counters,
    /// latency histograms, the phase profiler, and per-run
    /// `metrics.json` + `heatmap.csv` exports. Requires `--observe`.
    pub metrics: bool,
    /// Per-run simulated-cycle cap (`--cycle-budget N`); runs cut short
    /// record `RunOutcome::BudgetExceeded`. `None` disables the cap.
    pub cycle_budget: Option<u64>,
    /// Per-run wall-clock cap in seconds (`--wall-budget SECS`), checked
    /// between sampling periods. `None` disables the cap.
    pub wall_budget_secs: Option<f64>,
    /// Journal to resume from (`--resume FILE`): points already recorded
    /// there are skipped and their results spliced back in bit-identically;
    /// new completions append to the same file.
    pub resume: Option<String>,
    /// Extra attempts for points with transient outcomes — budget trips
    /// and harness panics (`--retries N`, default 1). Retries reuse the
    /// identical seed; only the backoff delay between attempts is jittered.
    pub retries: u32,
    /// Supervision: write a worker off once a point's simulation
    /// heartbeat has been frozen this long (`--point-deadline SECS`);
    /// `None` disables hung-worker detection.
    pub point_deadline_secs: Option<f64>,
    /// Supervision: re-dispatch the oldest straggling point to idle
    /// capacity once it has been in flight this long
    /// (`--hedge-after SECS`); `None` disables hedging.
    pub hedge_after_secs: Option<f64>,
    /// Supervision: quarantine a point once it has burned this many
    /// dispatches across workers (`--quarantine-after N`, default 3;
    /// `0` disables quarantine and lets a poison point retry forever).
    pub quarantine_after: u64,
    /// With `--resume`, accept a journal with corrupted mid-file lines
    /// (`--salvage`): every valid record is recovered, bad lines are
    /// quarantined to a `.corrupt.jsonl` sidecar, and their points
    /// re-run. Off by default — silent corruption should be loud.
    pub salvage: bool,
    /// Test hook (`--fail-after-points N`): simulate a crash by exiting
    /// the process (status 3) once N points have been journaled this run,
    /// without flushing anything else. Exercises the resume path.
    pub fail_after_points: Option<usize>,
    /// Test hook (not CLI-exposed): panic inside the worker at this point
    /// index, exercising per-point panic isolation.
    pub inject_panic: Option<usize>,
    /// Cooperative shutdown flag. Binaries route SIGINT here via
    /// [`install_sigint_handler`]; tests trip it directly.
    pub shutdown: CancelToken,
    /// Where points execute (`--backend local|remote`, `--worker ADDR`);
    /// defaults to the in-process pool.
    pub backend: BackendChoice,
}

/// The old name of [`SweepOptions`], kept for one release.
#[deprecated(since = "0.9.0", note = "renamed to `SweepOptions`")]
pub type HarnessOptions = SweepOptions;

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            schedule: MeasurementSchedule::default(),
            topology: None,
            seed: 1993,
            out_dir: "results".to_owned(),
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            observe_dir: None,
            trace_dir: None,
            sample_every: 0,
            metrics: false,
            cycle_budget: None,
            wall_budget_secs: None,
            resume: None,
            retries: 1,
            point_deadline_secs: None,
            hedge_after_secs: None,
            quarantine_after: 3,
            salvage: false,
            fail_after_points: None,
            inject_panic: None,
            shutdown: CancelToken::new(),
            backend: BackendChoice::Local,
        }
    }
}

impl SweepOptions {
    /// Parses `--quick`, `--saturation`, `--seed N`, `--out DIR`,
    /// `--threads N`, `--observe DIR`, `--trace-out DIR`,
    /// `--sample-every N` from `std::env::args`, exiting with a usage
    /// message on stderr (status 2) for malformed input.
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1)).unwrap_or_else(|message| {
            eprintln!("error: {message}");
            eprintln!(
                "usage: [--quick|--saturation] [--topo T] [--seed N] [--out DIR] [--threads N] \
                 [--observe DIR] [--trace-out DIR] [--sample-every N] [--metrics] \
                 [--cycle-budget N] [--wall-budget SECS] [--resume JOURNAL] [--salvage] \
                 [--retries N] [--point-deadline SECS] [--hedge-after SECS] \
                 [--quarantine-after N] [--backend local|remote] [--worker HOST:PORT]..."
            );
            std::process::exit(2);
        })
    }

    /// Parses an argument iterator (program name already stripped).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown flags, missing values,
    /// malformed integers, and the nonsensical `--threads 0`.
    pub fn parse(mut args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut options = SweepOptions::default();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => options.schedule = MeasurementSchedule::quick(),
                "--saturation" => options.schedule = MeasurementSchedule::saturation(),
                "--topo" => {
                    let v = args.next().ok_or("--topo needs a value")?;
                    options.topology = Some(cli::parse_topology(&v)?);
                }
                "--seed" => {
                    let v = args.next().ok_or("--seed needs a value")?;
                    options.seed = cli::parse_seed(&v)?;
                }
                "--out" => {
                    options.out_dir = args.next().ok_or("--out needs a directory")?;
                }
                "--threads" => {
                    let v = args.next().ok_or("--threads needs a value")?;
                    options.threads = cli::parse_threads(&v)?;
                }
                "--observe" => {
                    options.observe_dir = Some(args.next().ok_or("--observe needs a directory")?);
                }
                "--trace-out" => {
                    options.trace_dir = Some(args.next().ok_or("--trace-out needs a directory")?);
                }
                "--sample-every" => {
                    let v = args.next().ok_or("--sample-every needs a value")?;
                    options.sample_every = cli::parse_sample_every(&v)?;
                }
                "--metrics" => options.metrics = true,
                "--cycle-budget" => {
                    let v = args.next().ok_or("--cycle-budget needs a value")?;
                    options.cycle_budget = Some(cli::parse_cycle_budget(&v)?);
                }
                "--wall-budget" => {
                    let v = args.next().ok_or("--wall-budget needs a value")?;
                    options.wall_budget_secs = Some(cli::parse_wall_budget(&v)?);
                }
                "--resume" => {
                    options.resume = Some(args.next().ok_or("--resume needs a journal file")?);
                }
                "--retries" => {
                    let v = args.next().ok_or("--retries needs a value")?;
                    options.retries = cli::parse_retries(&v)?;
                }
                "--point-deadline" => {
                    let v = args.next().ok_or("--point-deadline needs a value")?;
                    options.point_deadline_secs =
                        Some(cli::parse_supervise_secs("--point-deadline", &v)?);
                }
                "--hedge-after" => {
                    let v = args.next().ok_or("--hedge-after needs a value")?;
                    options.hedge_after_secs =
                        Some(cli::parse_supervise_secs("--hedge-after", &v)?);
                }
                "--quarantine-after" => {
                    let v = args.next().ok_or("--quarantine-after needs a value")?;
                    options.quarantine_after = cli::parse_quarantine_after(&v)?;
                }
                "--salvage" => options.salvage = true,
                "--fail-after-points" => {
                    let v = args.next().ok_or("--fail-after-points needs a value")?;
                    options.fail_after_points = Some(cli::parse_fail_after(&v)?);
                }
                "--backend" => {
                    let v = args.next().ok_or("--backend needs 'local' or 'remote'")?;
                    options.set_backend(&v)?;
                }
                "--worker" => {
                    let v = args.next().ok_or("--worker needs HOST:PORT")?;
                    options.add_worker(v);
                }
                other => {
                    return Err(format!(
                        "unknown argument '{other}' (expected --quick, --saturation, --topo T, \
                         --seed N, --out DIR, --threads N, --observe DIR, --trace-out DIR, \
                         --sample-every N, --metrics, --cycle-budget N, --wall-budget SECS, \
                         --resume JOURNAL, --salvage, --retries N, --point-deadline SECS, \
                         --hedge-after SECS, --quarantine-after N, --backend local|remote, \
                         --worker HOST:PORT)"
                    ))
                }
            }
        }
        if options.metrics && options.observe_dir.is_none() {
            return Err("--metrics needs --observe DIR (metrics export to the observe dir)".into());
        }
        if options.salvage && options.resume.is_none() {
            return Err(
                "--salvage needs --resume JOURNAL (it relaxes how that journal is loaded)".into(),
            );
        }
        options.validate_backend()?;
        Ok(options)
    }

    /// Applies a `--backend` value.
    ///
    /// # Errors
    ///
    /// On anything other than `local` or `remote`, or `local` after
    /// `--worker` already implied remote.
    pub fn set_backend(&mut self, value: &str) -> Result<(), String> {
        match value {
            "local" => match &self.backend {
                BackendChoice::Remote { workers } if !workers.is_empty() => {
                    return Err("--backend local conflicts with --worker".into());
                }
                _ => self.backend = BackendChoice::Local,
            },
            "remote" => {
                if self.backend == BackendChoice::Local {
                    self.backend = BackendChoice::Remote {
                        workers: Vec::new(),
                    };
                }
            }
            other => {
                return Err(format!(
                    "--backend must be 'local' or 'remote', got '{other}'"
                ))
            }
        }
        Ok(())
    }

    /// Adds a `--worker HOST:PORT` address, switching to the remote
    /// backend if not already selected.
    pub fn add_worker(&mut self, addr: String) {
        match &mut self.backend {
            BackendChoice::Remote { workers } => workers.push(addr),
            BackendChoice::Local => {
                self.backend = BackendChoice::Remote {
                    workers: vec![addr],
                }
            }
        }
    }

    /// Checks backend-dependent option consistency: the remote backend
    /// needs at least one worker and cannot stream telemetry (observe and
    /// trace files would land on the worker's filesystem, not here).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the conflicting flags.
    pub fn validate_backend(&self) -> Result<(), String> {
        if let BackendChoice::Remote { workers } = &self.backend {
            if workers.is_empty() {
                return Err("--backend remote needs at least one --worker HOST:PORT".into());
            }
            if self.observe_dir.is_some() || self.trace_dir.is_some() {
                return Err(
                    "--observe/--trace-out are incompatible with --backend remote \
                     (telemetry would land on the worker's filesystem)"
                        .into(),
                );
            }
        }
        Ok(())
    }

    /// The `--topo` override, or the paper's default 16×16 torus.
    ///
    /// For binaries that study a single network rather than a
    /// [`FigureSpec`] sweep.
    pub fn topology_or_paper(&self) -> Topology {
        self.topology
            .clone()
            .unwrap_or_else(wormsim::presets::paper_topology)
    }
}

/// A figure sweep failure: the first experiment (lowest index in the
/// sweep's deterministic algorithm-major, load-minor order) whose run
/// returned an error.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepError {
    /// Index of the failed point in the sweep's deterministic order.
    pub index: usize,
    /// Algorithm of the failed point.
    pub algorithm: String,
    /// Offered load of the failed point.
    pub offered_load: f64,
    /// What went wrong.
    pub source: ExperimentError,
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sweep point {} ({} at offered load {}) failed: {}",
            self.index, self.algorithm, self.offered_load, self.source
        )
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Any failure of the sweep *machinery*, as opposed to the simulation: a
/// failing point configuration or a journal that cannot be read/written.
#[derive(Clone, Debug, PartialEq)]
pub enum HarnessError {
    /// A point's configuration was rejected (see [`SweepError`]).
    Sweep(SweepError),
    /// The run journal could not be loaded or persisted. Fatal by design:
    /// continuing without checkpoints would silently void the crash-safety
    /// contract.
    Journal(JournalError),
    /// The execution backend failed (a worker died, a handshake was
    /// refused). Fatal: the sweep cannot know which points would be lost.
    Backend(BackendError),
    /// The sweep plan or options were inconsistent (empty journal name,
    /// remote backend without workers, ...).
    Plan {
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::Sweep(e) => e.fmt(f),
            HarnessError::Journal(e) => e.fmt(f),
            HarnessError::Backend(e) => e.fmt(f),
            HarnessError::Plan { message } => write!(f, "invalid sweep plan: {message}"),
        }
    }
}

impl std::error::Error for HarnessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HarnessError::Sweep(e) => Some(e),
            HarnessError::Journal(e) => Some(e),
            HarnessError::Backend(e) => Some(e),
            HarnessError::Plan { .. } => None,
        }
    }
}

impl From<SweepError> for HarnessError {
    fn from(e: SweepError) -> Self {
        HarnessError::Sweep(e)
    }
}

impl From<JournalError> for HarnessError {
    fn from(e: JournalError) -> Self {
        HarnessError::Journal(e)
    }
}

/// How a figure sweep ended.
#[derive(Debug)]
pub enum FigureRun {
    /// Every point ran (or was resumed); results in deterministic order
    /// (algorithm-major, load-minor).
    Complete(Vec<RunResult>),
    /// Shutdown tripped mid-sweep. In-flight points were drained, every
    /// completed point is journaled, and `partial` holds the completed
    /// results in sweep order (missing points simply absent).
    Interrupted {
        /// Results of the points that completed before shutdown.
        partial: Vec<RunResult>,
        /// Completed (journaled) point count.
        completed: usize,
        /// Total points in the sweep.
        total: usize,
        /// The journal to pass back via `--resume`.
        journal: PathBuf,
    },
    /// The sweep ran to the end, but the supervisor quarantined poison
    /// points along the way: every other point is journaled and present
    /// in `partial`, and the quarantined ones are documented rather than
    /// silently missing. Binaries exit with a distinct status (4).
    Quarantined {
        /// Results of every non-quarantined point, in sweep order.
        partial: Vec<RunResult>,
        /// The points the sweep completed without.
        quarantined: Vec<QuarantineRecord>,
        /// Total points in the sweep.
        total: usize,
        /// The journal (its `.quarantine.jsonl` sidecar has the details).
        journal: PathBuf,
    },
}

/// One sweep's raw per-point outcomes from [`run_sweep`].
#[derive(Debug)]
pub struct ExperimentsRun {
    /// Per point, in input order: `None` if the point never ran (shutdown
    /// before dispatch, or cancelled by an earlier failure in fail-fast
    /// mode), otherwise the run result or its configuration error.
    pub outcomes: Vec<Option<Result<RunResult, ExperimentError>>>,
    /// Attempts each completed point took (1 = first try; 0 if never ran).
    pub attempts: Vec<u64>,
    /// Whether the shutdown token tripped before every point completed.
    pub interrupted: bool,
    /// Points spliced in from the resume journal rather than re-run.
    pub resumed: usize,
    /// Whether the resume journal ended in a torn append that
    /// [`Journal::load`] dropped: the sweep re-ran the lost point, but
    /// callers inspecting a crash deserve to know the journal was not
    /// clean.
    pub recovered_truncation: bool,
    /// Corrupted journal lines `--salvage` quarantined to the
    /// `.corrupt.jsonl` sidecar (always 0 without the flag).
    pub salvaged: usize,
    /// Points the supervisor wrote off as poison: their outcome slots are
    /// `None`, their stories live in the `.quarantine.jsonl` sidecar, and
    /// the sweep completed without them.
    pub quarantined: Vec<QuarantineRecord>,
    /// What supervision did: workers written off for frozen heartbeats,
    /// straggler hedges, and discarded duplicate completions.
    pub supervision: SupervisionReport,
    /// Where the journal lives; pass via `--resume` to continue.
    pub journal: PathBuf,
}

/// What to sweep: the experiment list plus the per-sweep policy that used
/// to ride along as positional arguments (`journal_name`, `fail_fast`).
///
/// Build with [`SweepPlan::new`] and the chained setters; [`run_sweep`]
/// validates the plan before touching the filesystem.
#[derive(Clone, Debug)]
pub struct SweepPlan {
    experiments: Vec<Experiment>,
    journal_name: String,
    fail_fast: bool,
}

impl SweepPlan {
    /// A plan over `experiments` with the default journal name
    /// (`sweep.journal.jsonl`) and fail-fast off.
    pub fn new(experiments: Vec<Experiment>) -> SweepPlan {
        SweepPlan {
            experiments,
            journal_name: "sweep.journal.jsonl".to_owned(),
            fail_fast: false,
        }
    }

    /// Names the journal file created under the options' output directory
    /// when not resuming.
    #[must_use]
    pub fn journal_name(mut self, name: impl Into<String>) -> SweepPlan {
        self.journal_name = name.into();
        self
    }

    /// With fail-fast, the first point whose *configuration* is rejected
    /// cancels the remaining points (figure sweeps: one bad config means
    /// the whole figure is wrong); without it, configuration errors are
    /// recorded per point and the sweep continues (fault sweeps: a plan
    /// that disconnects the network is data, not a bug).
    #[must_use]
    pub fn fail_fast(mut self, fail_fast: bool) -> SweepPlan {
        self.fail_fast = fail_fast;
        self
    }

    /// The planned experiments, in schedule order.
    pub fn experiments(&self) -> &[Experiment] {
        &self.experiments
    }

    /// Checks plan consistency (the journal name must be a bare file
    /// name, not a path).
    ///
    /// # Errors
    ///
    /// A human-readable message.
    pub fn validate(&self) -> Result<(), String> {
        if self.journal_name.is_empty() {
            return Err("journal name must not be empty".into());
        }
        if self.journal_name.contains('/') || self.journal_name.contains('\\') {
            return Err(format!(
                "journal name '{}' must be a file name, not a path (it lands under --out)",
                self.journal_name
            ));
        }
        Ok(())
    }
}

/// Orchestrates a [`SweepPlan`] on the configured backend with the full
/// robustness stack: journaled checkpoints (skipping points already
/// recorded when `options.resume` is set), per-point panic isolation,
/// bounded retries with backoff, and cooperative shutdown that drains
/// in-flight points.
///
/// Points are submitted to the backend up to its capacity and polled to
/// completion; the deterministic committer appends finished points to the
/// journal strictly in schedule order, with the machine-dependent wall
/// fields canonicalized to zero — so the journal bytes are identical
/// whether the sweep ran on one thread, sixteen, or two remote workers.
///
/// # Errors
///
/// Journal I/O or parse failures, backend infrastructure failures, and
/// inconsistent plans/options. Point-level outcomes — including
/// configuration errors — are reported in the returned
/// [`ExperimentsRun`], not as `Err`.
pub fn run_sweep(plan: &SweepPlan, options: &SweepOptions) -> Result<ExperimentsRun, HarnessError> {
    plan.validate()
        .and_then(|()| options.validate_backend())
        .map_err(|message| HarnessError::Plan { message })?;
    let experiments = plan.experiments();
    let mut salvaged_lines: Vec<SalvagedLine> = Vec::new();
    let journal = match &options.resume {
        Some(path) if options.salvage => {
            let (journal, salvaged) = Journal::load_salvaging(path)?;
            salvaged_lines = salvaged;
            journal
        }
        Some(path) => Journal::load(path)?,
        None => Journal::create(Path::new(&options.out_dir).join(&plan.journal_name))?,
    };
    let journal_path = journal.path().to_path_buf();
    if !salvaged_lines.is_empty() {
        let sidecar = Journal::salvage_sidecar(&journal_path);
        let mut text = String::new();
        for bad in &salvaged_lines {
            let mut record = JsonObject::begin(&mut text);
            record.field_u64("line", bad.line as u64);
            record.field_str("error", &bad.error);
            record.field_str("text", &bad.text);
            record.finish();
            text.push('\n');
        }
        write_sidecar(&sidecar, &text)?;
        eprintln!(
            "WARNING: salvage recovered {} valid point(s) around {} corrupted journal line(s); \
             bad lines quarantined to {} and their points re-run",
            journal.len(),
            salvaged_lines.len(),
            sidecar.display()
        );
    }
    let hashes: Vec<String> = experiments.iter().map(Experiment::point_hash).collect();

    // One slot per point: the outcome plus the attempts it took.
    type Slot = Option<(Result<RunResult, ExperimentError>, u64)>;
    let total = experiments.len();
    let mut slots: Vec<Slot> = (0..total).map(|_| None).collect();
    let mut resumed = 0usize;
    for (i, hash) in hashes.iter().enumerate() {
        if let Some(entry) = journal.get(hash) {
            slots[i] = Some((Ok(entry.result.clone()), entry.attempts));
            resumed += 1;
        }
    }
    let recovered_truncation = journal.recovered_truncation();
    if resumed > 0 || recovered_truncation {
        let torn = if recovered_truncation {
            " (recovered from a torn final append; the lost point re-runs)"
        } else {
            ""
        };
        eprintln!(
            "resuming: {resumed}/{total} points already journaled in {}{torn}",
            journal_path.display()
        );
    }

    let mut committer = Committer::new(journal, total, options.fail_after_points);
    let mut backend: Box<dyn WorkerBackend> = match &options.backend {
        BackendChoice::Local => Box::new(LocalThreadBackend::new(
            options.threads,
            options.shutdown.clone(),
        )),
        BackendChoice::Remote { workers } => {
            Box::new(RemoteBackend::connect(workers).map_err(HarnessError::Backend)?)
        }
    };

    // Submission queue in schedule order; resumed points resolve as skips
    // so they never block the committer's frontier.
    let mut to_submit: VecDeque<usize> = VecDeque::new();
    for i in 0..total {
        if slots[i].is_some() {
            committer.skip(i)?;
        } else {
            to_submit.push_back(i);
        }
    }

    let mut supervisor = Supervisor::new(SupervisePolicy {
        point_deadline: options
            .point_deadline_secs
            .map(std::time::Duration::from_secs_f64),
        hedge_after: options
            .hedge_after_secs
            .map(std::time::Duration::from_secs_f64),
        quarantine_after: options.quarantine_after,
    });
    let mut quarantined: Vec<QuarantineRecord> = Vec::new();
    let mut retry_decisions: std::collections::BTreeMap<String, u64> =
        std::collections::BTreeMap::new();
    let mut aborted = false;
    let mut cancel_sent = false;
    let mut done = resumed;
    let started = std::time::Instant::now();

    loop {
        while !aborted
            && !options.shutdown.is_cancelled()
            && supervisor.dispatched() < backend.capacity().max(1)
        {
            let Some(&i) = to_submit.front() else { break };
            let job = PointJob {
                experiment: experiments[i].clone(),
                index: i,
                point_hash: hashes[i].clone(),
                retries: options.retries,
                inject_panic: options.inject_panic == Some(i),
                resumed_from: options.resume.clone(),
            };
            supervisor
                .submit(backend.as_mut(), job)
                .map_err(HarnessError::Backend)?;
            to_submit.pop_front();
        }
        if options.shutdown.is_cancelled() && !cancel_sent {
            backend.cancel();
            cancel_sent = true;
        }
        if supervisor.is_idle()
            && (to_submit.is_empty() || aborted || options.shutdown.is_cancelled())
        {
            break;
        }
        let events = supervisor
            .tick(backend.as_mut())
            .map_err(HarnessError::Backend)?;
        let progressed = !events.is_empty();
        for event in events {
            match event {
                Event::Done {
                    index: i,
                    result,
                    attempts,
                    retry_decision,
                } => {
                    match &result {
                        Ok(r) if r.outcome == RunOutcome::Interrupted => {
                            // Shutdown drained this point mid-run: its
                            // partial statistics are not data. Leave the
                            // slot empty so a resume re-runs it.
                            committer.skip(i)?;
                            continue;
                        }
                        Ok(r) => {
                            let mut recorded = r.clone();
                            // The only machine-dependent bytes in a result;
                            // zeroing them makes the journal byte-identical
                            // across backends and machines.
                            recorded.wall_seconds = 0.0;
                            recorded.cycles_per_sec = 0.0;
                            if let Some(decision) = &retry_decision {
                                *retry_decisions.entry(decision.clone()).or_insert(0) += 1;
                            }
                            committer.complete(
                                i,
                                JournalEntry {
                                    point_hash: hashes[i].clone(),
                                    index: i,
                                    attempts,
                                    retry_decision,
                                    result: recorded,
                                },
                            )?;
                        }
                        Err(_) => {
                            committer.skip(i)?;
                            if plan.fail_fast {
                                aborted = true;
                            }
                        }
                    }
                    slots[i] = Some((result, attempts));
                    done += 1;
                    let remaining = total - done;
                    if remaining == 0 {
                        eprint!("\r  {done}/{total} points              ");
                    } else {
                        // Average seconds per completed point predicts the
                        // rest.
                        let fresh = done.saturating_sub(resumed).max(1);
                        let eta = started.elapsed().as_secs_f64() / fresh as f64 * remaining as f64;
                        eprint!("\r  {done}/{total} points (ETA {eta:.0}s)   ");
                    }
                    let _ = std::io::stderr().flush();
                }
                Event::Quarantined(record) => {
                    // The point is written off, not retried: unblock the
                    // committer's frontier and carry on without it.
                    committer.skip(record.index)?;
                    eprintln!(
                        "\nquarantining point {} after {} dispatches: {}",
                        record.index, record.dispatches, record.last_error
                    );
                    quarantined.push(record);
                    done += 1;
                }
            }
        }
        if !progressed {
            std::thread::sleep(backend.poll_interval());
        }
    }
    // Abort/interrupt can leave completed entries held behind a gap;
    // persist them (out of the strict order, which only covers complete
    // runs) so a resume does not redo finished work.
    committer.flush()?;
    eprintln!();

    let mut outcomes = Vec::with_capacity(total);
    let mut attempts = Vec::with_capacity(total);
    for slot in slots {
        match slot {
            Some((result, n)) => {
                outcomes.push(Some(result));
                attempts.push(n);
            }
            None => {
                outcomes.push(None);
                attempts.push(0);
            }
        }
    }
    // Quarantined points are deliberately absent, not pending: they must
    // not read as an interruption (which would promise a resume could
    // finish them).
    let interrupted = outcomes
        .iter()
        .enumerate()
        .any(|(i, o)| o.is_none() && !quarantined.iter().any(|q| q.index == i))
        && !aborted;
    if !quarantined.is_empty() {
        let sidecar = Journal::quarantine_sidecar(&journal_path);
        let mut text = String::new();
        for record in &quarantined {
            let mut object = JsonObject::begin(&mut text);
            object.field_u64("index", record.index as u64);
            object.field_str("point_hash", &record.point_hash);
            object.field_u64("dispatches", record.dispatches);
            object.field_str("last_error", &record.last_error);
            object.finish();
            text.push('\n');
        }
        write_sidecar(&sidecar, &text)?;
        eprintln!(
            "{} point(s) quarantined as poison; details in {}",
            quarantined.len(),
            sidecar.display()
        );
    }
    let supervision = supervisor.report.clone();
    if !supervision.is_empty()
        || !quarantined.is_empty()
        || !retry_decisions.is_empty()
        || !salvaged_lines.is_empty()
    {
        let manifest = Journal::supervision_sidecar(&journal_path);
        let mut text = String::new();
        let mut object = JsonObject::begin(&mut text);
        object.field_u64("workers_written_off", supervision.workers_written_off);
        object.field_u64("points_hedged", supervision.points_hedged);
        object.field_u64("duplicates_discarded", supervision.duplicates_discarded);
        object.field_u64("points_quarantined", quarantined.len() as u64);
        object.field_u64("journal_lines_salvaged", salvaged_lines.len() as u64);
        let mut decisions = String::new();
        let mut inner = JsonObject::begin(&mut decisions);
        for (decision, count) in &retry_decisions {
            inner.field_u64(decision, *count);
        }
        inner.finish();
        object.field_raw("retry_decisions", &decisions);
        object.finish();
        text.push('\n');
        write_sidecar(&manifest, &text)?;
        eprintln!("supervision manifest written to {}", manifest.display());
    }
    Ok(ExperimentsRun {
        outcomes,
        attempts,
        interrupted,
        resumed,
        recovered_truncation,
        salvaged: salvaged_lines.len(),
        quarantined,
        supervision,
        journal: journal_path,
    })
}

/// Writes a supervision sidecar (quarantine records, salvage captures,
/// the manifest) atomically next to the journal.
fn write_sidecar(path: &Path, text: &str) -> Result<(), HarnessError> {
    wormsim::observe::atomic_write(path, text).map_err(|e| {
        HarnessError::Journal(JournalError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })
    })
}

/// The pre-[`SweepPlan`] orchestrator entry point, kept for one release.
///
/// # Errors
///
/// As for [`run_sweep`].
#[deprecated(
    since = "0.9.0",
    note = "build a `SweepPlan` and call `run_sweep` instead"
)]
pub fn run_experiments(
    experiments: &[Experiment],
    options: &SweepOptions,
    journal_name: &str,
    fail_fast: bool,
) -> Result<ExperimentsRun, HarnessError> {
    run_sweep(
        &SweepPlan::new(experiments.to_vec())
            .journal_name(journal_name)
            .fail_fast(fail_fast),
        options,
    )
}

/// Runs every `(algorithm, load)` experiment of a figure in parallel with
/// the full robustness stack (see [`run_sweep`]) and returns results
/// in deterministic order (algorithm-major, load-minor).
///
/// # Errors
///
/// The first failing experiment wins: its [`SweepError`] is returned and
/// unclaimed points are cancelled (points already running finish but their
/// results are dropped). Journal failures surface as
/// [`HarnessError::Journal`]. Worker panics do not fail the sweep — they
/// are recorded per point as [`RunOutcome::Harness`].
/// Applies the `--topo` override (if any) to a figure spec: retargets the
/// network, remaps topology-dependent traffic (see
/// [`FigureSpec::with_topology`]), and drops algorithms the new topology
/// rejects (e.g. the negative-hop schemes on odd-radix tori), reporting each
/// skip on stderr.
///
/// Without an override the spec is returned untouched, so the default 16×16
/// figure outputs stay bit-identical.
///
/// # Panics
///
/// Panics if the override leaves no runnable algorithm.
pub fn apply_topology_override(spec: FigureSpec, options: &SweepOptions) -> FigureSpec {
    let Some(topo) = &options.topology else {
        return spec;
    };
    let mut spec = spec.with_topology(topo.clone());
    spec.algorithms
        .retain(|kind| match kind.build(&spec.topology) {
            Ok(_) => true,
            Err(e) => {
                eprintln!("skipping {kind}: {e}");
                false
            }
        });
    assert!(
        !spec.algorithms.is_empty(),
        "no selected algorithm supports {topo}"
    );
    spec
}

pub fn run_figure(spec: &FigureSpec, options: &SweepOptions) -> Result<FigureRun, HarnessError> {
    let mut experiments = wormsim::presets::experiments_for(spec, options.schedule, options.seed);
    if options.observe_dir.is_some() || options.trace_dir.is_some() {
        let config = ObserveConfig {
            out_dir: options.observe_dir.as_deref().map(Into::into),
            trace_dir: options.trace_dir.as_deref().map(Into::into),
            sample_every: options.sample_every,
            prefix: spec.id.to_owned(),
            metrics: options.metrics,
        };
        experiments = experiments
            .into_iter()
            .map(|e| e.observe(config.clone()))
            .collect();
    }
    experiments = experiments
        .into_iter()
        .map(|e| {
            e.cycle_budget(options.cycle_budget)
                .wall_budget_secs(options.wall_budget_secs)
                .cancel_token(options.shutdown.clone())
        })
        .collect();

    let plan = SweepPlan::new(experiments)
        .journal_name(format!("{}.journal.jsonl", spec.id))
        .fail_fast(true);
    let run = run_sweep(&plan, options)?;
    let experiments = plan.experiments();

    // First configuration error (lowest index) wins, as before.
    for (i, outcome) in run.outcomes.iter().enumerate() {
        if let Some(Err(e)) = outcome {
            return Err(SweepError {
                index: i,
                algorithm: experiments[i].algorithm_kind().name().to_owned(),
                offered_load: experiments[i].offered_load_value(),
                source: e.clone(),
            }
            .into());
        }
    }
    let total = run.outcomes.len();
    let results: Vec<RunResult> = run
        .outcomes
        .into_iter()
        .flatten()
        .map(|r| r.expect("errors returned above"))
        .collect();
    if run.interrupted {
        let completed = results.len();
        return Ok(FigureRun::Interrupted {
            partial: results,
            completed,
            total,
            journal: run.journal,
        });
    }
    if !run.quarantined.is_empty() {
        return Ok(FigureRun::Quarantined {
            partial: results,
            quarantined: run.quarantined,
            total,
            journal: run.journal,
        });
    }
    Ok(FigureRun::Complete(results))
}

/// The command line to paste to continue an interrupted sweep: the current
/// invocation with any stale `--resume`/`--fail-after-points` stripped and
/// `--resume <journal>` appended.
pub fn resume_command(journal: &Path) -> String {
    let mut parts = Vec::new();
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--resume" || arg == "--fail-after-points" {
            let _ = args.next();
            continue;
        }
        parts.push(arg);
    }
    parts.push("--resume".to_owned());
    parts.push(journal.display().to_string());
    parts.join(" ")
}

/// Runs a figure for a binary: installs the SIGINT handler, and on
/// interruption flushes a partial CSV, prints the resume command, and
/// exits 130; when the supervisor quarantined poison points it flushes
/// the partial CSV and exits 4 (distinct from both success and failure —
/// most points are good data, but the figure is incomplete by design);
/// on error exits 1. Returns only when the sweep completed whole.
pub fn run_figure_or_exit(spec: &FigureSpec, options: &SweepOptions) -> Vec<RunResult> {
    install_sigint_handler(&options.shutdown);
    match run_figure(spec, options) {
        Ok(FigureRun::Complete(results)) => results,
        Ok(FigureRun::Interrupted {
            partial,
            completed,
            total,
            journal,
        }) => {
            if !partial.is_empty() {
                match write_csv(&format!("{}.partial", spec.id), &partial, &options.out_dir) {
                    Ok(path) => eprintln!("wrote partial results to {path}"),
                    Err(e) => eprintln!("could not write partial CSV: {e}"),
                }
            }
            eprintln!("interrupted: {completed}/{total} points completed and journaled");
            eprintln!("resume with: {}", resume_command(&journal));
            std::process::exit(130);
        }
        Ok(FigureRun::Quarantined {
            partial,
            quarantined,
            total,
            journal,
        }) => {
            if !partial.is_empty() {
                match write_csv(&format!("{}.partial", spec.id), &partial, &options.out_dir) {
                    Ok(path) => eprintln!("wrote partial results to {path}"),
                    Err(e) => eprintln!("could not write partial CSV: {e}"),
                }
            }
            eprintln!(
                "quarantined: sweep completed {}/{total} points; {} written off as poison \
                 (see {})",
                total - quarantined.len(),
                quarantined.len(),
                Journal::quarantine_sidecar(&journal).display()
            );
            for record in &quarantined {
                eprintln!(
                    "  point {} after {} dispatches: {}",
                    record.index, record.dispatches, record.last_error
                );
            }
            std::process::exit(4);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// Prints the figure in the paper's two-panel form (latency vs offered
/// load, achieved vs offered throughput), one series per algorithm.
pub fn print_figure(spec: &FigureSpec, results: &[RunResult]) {
    println!("== {} ({}) ==", spec.title, spec.id);
    let loads = &spec.loads;
    println!("\nAverage latency (cycles) vs offered channel utilization:");
    print!("{:>8}", "offered");
    for algo in &spec.algorithms {
        print!("{:>10}", algo.name());
    }
    println!();
    for (li, load) in loads.iter().enumerate() {
        print!("{load:>8.2}");
        for (ai, _) in spec.algorithms.iter().enumerate() {
            let r = &results[ai * loads.len() + li];
            print!("{:>10.1}", r.latency.mean());
        }
        println!();
    }
    println!("\nAchieved channel utilization vs offered channel utilization:");
    print!("{:>8}", "offered");
    for algo in &spec.algorithms {
        print!("{:>10}", algo.name());
    }
    println!();
    for (li, load) in loads.iter().enumerate() {
        print!("{load:>8.2}");
        for (ai, _) in spec.algorithms.iter().enumerate() {
            let r = &results[ai * loads.len() + li];
            print!("{:>10.4}", r.achieved_utilization);
        }
        println!();
    }
    println!("\nPeak achieved utilization per algorithm:");
    for (ai, algo) in spec.algorithms.iter().enumerate() {
        let series = &results[ai * loads.len()..(ai + 1) * loads.len()];
        let best = series
            .iter()
            .max_by(|a, b| {
                a.achieved_utilization
                    .partial_cmp(&b.achieved_utilization)
                    .expect("finite")
            })
            .expect("non-empty series");
        println!(
            "  {:>6}: {:.3} (at offered {:.2})",
            algo.name(),
            best.achieved_utilization,
            best.offered_load
        );
    }
    // ASCII renditions of the two panels, in the paper's style.
    let latency_series: Vec<plot::Series> = spec
        .algorithms
        .iter()
        .enumerate()
        .map(|(ai, algo)| plot::Series {
            label: algo.name().to_owned(),
            marker: plot::MARKERS[ai % plot::MARKERS.len()],
            points: loads
                .iter()
                .enumerate()
                .map(|(li, &load)| (load, results[ai * loads.len() + li].latency.mean()))
                .collect(),
        })
        .collect();
    println!(
        "{}",
        plot::render("Average latency (cycles)", &latency_series, 64, 18)
    );
    let util_series: Vec<plot::Series> = latency_series
        .iter()
        .enumerate()
        .map(|(ai, s)| plot::Series {
            label: s.label.clone(),
            marker: s.marker,
            points: loads
                .iter()
                .enumerate()
                .map(|(li, &load)| (load, results[ai * loads.len() + li].achieved_utilization))
                .collect(),
        })
        .collect();
    println!(
        "{}",
        plot::render("Achieved channel utilization", &util_series, 64, 18)
    );
    println!("{}", format_results_table(results));
}

/// Prints the paper's quoted numbers next to ours for the figure.
pub fn print_paper_comparison(spec_id: &str, results: &[RunResult]) {
    let claims = paper_reference(spec_id);
    if claims.is_empty() {
        return;
    }
    println!("Paper vs measured:");
    for claim in claims {
        let measured = (claim.measure)(results);
        println!(
            "  {:<62} paper {:>6}  measured {:>7.3}",
            claim.what, claim.paper_value, measured
        );
    }
    println!();
}

/// Writes the sweep CSV under the output directory (atomically, via a
/// temp-file rename, so a crash mid-write never leaves a torn CSV),
/// returning the path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(spec_id: &str, results: &[RunResult], out_dir: &str) -> std::io::Result<String> {
    std::fs::create_dir_all(out_dir)?;
    let path = Path::new(out_dir).join(format!("{spec_id}.csv"));
    wormsim::observe::atomic_write(&path, format_sweep_csv(results))?;
    Ok(path.display().to_string())
}

/// Peak achieved utilization of one algorithm's series.
pub fn peak_utilization(results: &[RunResult], algorithm: &str) -> f64 {
    results
        .iter()
        .filter(|r| r.algorithm == algorithm)
        .map(|r| r.achieved_utilization)
        .fold(0.0, f64::max)
}

/// Latency of one algorithm at the offered load closest to `load`.
pub fn latency_at(results: &[RunResult], algorithm: &str, load: f64) -> f64 {
    results
        .iter()
        .filter(|r| r.algorithm == algorithm)
        .min_by(|a, b| {
            (a.offered_load - load)
                .abs()
                .partial_cmp(&(b.offered_load - load).abs())
                .expect("finite")
        })
        .map_or(f64::NAN, |r| r.latency.mean())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormsim::presets;

    fn parse(args: &[&str]) -> Result<SweepOptions, String> {
        SweepOptions::parse(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn options_parse_well_formed_args() {
        let options = parse(&["--quick", "--seed", "7", "--threads", "3", "--out", "o"]).unwrap();
        assert_eq!(options.seed, 7);
        assert_eq!(options.threads, 3);
        assert_eq!(options.out_dir, "o");
    }

    #[test]
    fn options_parse_topology_override() {
        let options = parse(&["--topo", "8^3"]).unwrap();
        assert_eq!(options.topology, Some(Topology::k_ary_n_cube(8, 3)));
        assert_eq!(parse(&[]).unwrap().topology, None);
        assert!(parse(&["--topo"]).is_err());
        assert!(parse(&["--topo", "donut:9"]).is_err());
    }

    #[test]
    fn topology_override_rewrites_spec() {
        let options = parse(&["--topo", "torus:8x8"]).unwrap();
        let spec = apply_topology_override(presets::fig4(), &options);
        assert_eq!(spec.topology, Topology::torus(&[8, 8]));
        // The corner hotspot moved with the network.
        match &spec.traffic {
            wormsim::TrafficConfig::Hotspot { nodes, .. } => {
                assert_eq!(nodes, &vec![vec![7, 7]]);
            }
            other => panic!("unexpected traffic {other:?}"),
        }
        // All six paper algorithms run on an even-radix torus.
        assert_eq!(spec.algorithms.len(), 6);
        // An odd-radix torus drops the bipartite-only schemes but keeps
        // the rest runnable.
        let odd = parse(&["--topo", "torus:9x9"]).unwrap();
        let spec = apply_topology_override(presets::fig3(), &odd);
        assert!(!spec.algorithms.is_empty());
        assert!(spec.algorithms.len() < 6);
        // No override: the spec is untouched.
        let spec = apply_topology_override(presets::fig3(), &parse(&[]).unwrap());
        assert_eq!(spec.topology, presets::paper_topology());
    }

    #[test]
    fn options_parse_observability_flags() {
        let options = parse(&[
            "--observe",
            "obs",
            "--trace-out",
            "traces",
            "--sample-every",
            "250",
            "--metrics",
        ])
        .unwrap();
        assert_eq!(options.observe_dir.as_deref(), Some("obs"));
        assert_eq!(options.trace_dir.as_deref(), Some("traces"));
        assert_eq!(options.sample_every, 250);
        assert!(options.metrics);
        let defaults = parse(&[]).unwrap();
        assert_eq!(defaults.observe_dir, None);
        assert_eq!(defaults.trace_dir, None);
        assert_eq!(defaults.sample_every, 0);
        assert!(!defaults.metrics);
        // Metrics export into the observe dir, so it must be set.
        let err = parse(&["--metrics"]).unwrap_err();
        assert!(err.contains("--observe"), "got: {err}");
    }

    #[test]
    fn options_reject_zero_threads() {
        assert!(parse(&["--threads", "0"]).is_err());
    }

    #[test]
    fn options_reject_bad_sample_every() {
        assert!(parse(&["--sample-every", "0"]).is_err());
        assert!(parse(&["--sample-every", "soon"]).is_err());
        assert!(parse(&["--sample-every"]).is_err());
        assert!(parse(&["--observe"]).is_err());
        assert!(parse(&["--trace-out"]).is_err());
    }

    #[test]
    fn options_reject_malformed_integers() {
        assert!(parse(&["--threads", "three"]).is_err());
        assert!(parse(&["--threads", "-1"]).is_err());
        assert!(parse(&["--seed", "2e9"]).is_err());
        assert!(parse(&["--seed", "0xbeef"]).is_err());
    }

    #[test]
    fn options_reject_missing_values_and_unknown_flags() {
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--threads"]).is_err());
        assert!(parse(&["--warp-speed"]).is_err());
    }

    #[test]
    fn options_parse_robustness_flags() {
        let options = parse(&[
            "--resume",
            "results/fig3.journal.jsonl",
            "--retries",
            "3",
            "--fail-after-points",
            "2",
        ])
        .unwrap();
        assert_eq!(
            options.resume.as_deref(),
            Some("results/fig3.journal.jsonl")
        );
        assert_eq!(options.retries, 3);
        assert_eq!(options.fail_after_points, Some(2));
        let defaults = parse(&[]).unwrap();
        assert_eq!(defaults.resume, None);
        assert_eq!(defaults.retries, 1);
        assert_eq!(defaults.fail_after_points, None);
        assert!(!defaults.shutdown.is_cancelled());
        assert!(parse(&["--resume"]).is_err());
        assert!(parse(&["--retries", "many"]).is_err());
        assert!(parse(&["--fail-after-points", "0"]).is_err());
    }

    #[test]
    fn options_parse_backend_flags() {
        assert_eq!(parse(&[]).unwrap().backend, BackendChoice::Local);
        assert_eq!(
            parse(&["--backend", "local"]).unwrap().backend,
            BackendChoice::Local
        );
        let options = parse(&["--worker", "127.0.0.1:9000", "--worker", "127.0.0.1:9001"]).unwrap();
        assert_eq!(
            options.backend,
            BackendChoice::Remote {
                workers: vec!["127.0.0.1:9000".to_owned(), "127.0.0.1:9001".to_owned()],
            },
            "--worker implies the remote backend"
        );
        // Remote without workers, or with local telemetry flags, is
        // rejected up front.
        assert!(parse(&["--backend", "remote"]).is_err());
        assert!(parse(&["--backend", "tape"]).is_err());
        assert!(parse(&["--worker", "w:1", "--backend", "local"]).is_err());
        let err =
            parse(&["--worker", "w:1", "--observe", "obs"]).expect_err("observe cannot shard");
        assert!(err.contains("--observe"), "got: {err}");
    }

    #[test]
    fn sweep_plan_validates_journal_names() {
        let plan = SweepPlan::new(Vec::new());
        assert_eq!(plan.journal_name, "sweep.journal.jsonl");
        assert!(!plan.fail_fast);
        assert!(plan.validate().is_ok());
        assert!(SweepPlan::new(Vec::new())
            .journal_name("")
            .validate()
            .is_err());
        assert!(SweepPlan::new(Vec::new())
            .journal_name("nested/name.jsonl")
            .validate()
            .is_err());
        let options = SweepOptions::default();
        let error = run_sweep(&SweepPlan::new(Vec::new()).journal_name("a/b"), &options)
            .expect_err("bad plan must be rejected before any I/O");
        assert!(matches!(error, HarnessError::Plan { .. }), "{error}");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_run_experiments_shim_delegates() {
        let options = SweepOptions {
            out_dir: temp_out_dir("shim"),
            ..SweepOptions::default()
        };
        let run = run_experiments(&[], &options, "shim.journal.jsonl", true).unwrap();
        assert!(run.outcomes.is_empty());
        assert!(!run.interrupted);
        assert!(run.journal.ends_with("shim.journal.jsonl"));
        std::fs::remove_dir_all(&options.out_dir).ok();
    }

    fn temp_out_dir(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("wormsim-bench-{}-{name}", std::process::id()))
            .display()
            .to_string()
    }

    fn tiny_spec() -> FigureSpec {
        let mut spec = presets::fig3();
        spec.loads = vec![0.1, 0.3];
        spec.algorithms = vec![
            wormsim::AlgorithmKind::Ecube,
            wormsim::AlgorithmKind::PositiveHop,
        ];
        spec
    }

    fn complete(run: FigureRun) -> Vec<RunResult> {
        match run {
            FigureRun::Complete(results) => results,
            other => panic!("sweep unexpectedly did not complete: {other:?}"),
        }
    }

    #[test]
    fn harness_runs_a_tiny_figure() {
        // A reduced fig3: two algorithms, two loads, quick schedule.
        let spec = tiny_spec();
        let options = SweepOptions {
            schedule: MeasurementSchedule::quick(),
            seed: 5,
            out_dir: temp_out_dir("tiny-figure"),
            threads: 4,
            ..SweepOptions::default()
        };
        let results = complete(run_figure(&spec, &options).expect("all points run"));
        assert_eq!(results.len(), 4);
        // Ordering: algorithm-major, load-minor.
        assert_eq!(results[0].algorithm, "ecube");
        assert!((results[0].offered_load - 0.1).abs() < 1e-12);
        assert_eq!(results[3].algorithm, "phop");
        assert!((results[3].offered_load - 0.3).abs() < 1e-12);
        let path = write_csv("test", &results, &options.out_dir).unwrap();
        let csv = std::fs::read_to_string(path).unwrap();
        assert_eq!(csv.lines().count(), 5);
        assert!(peak_utilization(&results, "phop") > 0.2);
        assert!(latency_at(&results, "ecube", 0.1) > 15.0);
        std::fs::remove_dir_all(&options.out_dir).ok();
    }

    #[test]
    fn sweep_error_names_the_first_failing_point() {
        // Load 9.0 is invalid, so the second point of each series fails.
        // One worker thread makes "first error wins" exact: index 1.
        let mut spec = tiny_spec();
        spec.loads = vec![0.1, 9.0];
        let options = SweepOptions {
            schedule: MeasurementSchedule::quick(),
            threads: 1,
            out_dir: temp_out_dir("first-failure"),
            ..SweepOptions::default()
        };
        let harness_error =
            run_figure(&spec, &options).expect_err("invalid load must fail the sweep");
        let HarnessError::Sweep(error) = harness_error else {
            panic!("expected a sweep error, got: {harness_error}");
        };
        assert_eq!(error.index, 1);
        assert_eq!(error.algorithm, "ecube");
        assert!((error.offered_load - 9.0).abs() < 1e-12);
        assert!(matches!(
            error.source,
            wormsim::ExperimentError::InvalidLoad { .. }
        ));
        let message = error.to_string();
        assert!(message.contains("ecube"), "got: {message}");
        assert!(message.contains('9'), "got: {message}");
        use std::error::Error as _;
        assert!(error.source().is_some());
        std::fs::remove_dir_all(&options.out_dir).ok();
    }

    #[test]
    fn injected_panic_is_isolated_and_recorded() {
        // One point panics; the sweep must still complete, with the panic
        // rendered as a Harness outcome rather than poisoning the pool.
        // retries: 0 so the panic is recorded on the first attempt.
        let spec = tiny_spec();
        let options = SweepOptions {
            schedule: MeasurementSchedule::quick(),
            seed: 5,
            out_dir: temp_out_dir("inject-panic"),
            threads: 2,
            retries: 0,
            inject_panic: Some(2),
            ..SweepOptions::default()
        };
        let results = complete(run_figure(&spec, &options).expect("panic must not fail sweep"));
        assert_eq!(results.len(), 4);
        let RunOutcome::Harness(info) = &results[2].outcome else {
            panic!(
                "expected a harness panic outcome, got {:?}",
                results[2].outcome
            );
        };
        assert!(info.message.contains("injected"), "got: {}", info.message);
        assert_eq!(
            results[2].samples, 0,
            "panicked point carries no statistics"
        );
        for (i, r) in results.iter().enumerate() {
            if i != 2 {
                assert!(r.outcome.has_statistics(), "point {i} ran normally");
            }
        }
        std::fs::remove_dir_all(&options.out_dir).ok();
    }

    #[test]
    fn transient_panic_is_retried_until_attempts_exhaust() {
        // The injection fires on every attempt of point 1, so with two
        // retries the point is tried 3 times (with backoff between), ends
        // as a Harness outcome, and the attempt count is recorded.
        let spec = tiny_spec();
        let experiments = wormsim::presets::experiments_for(&spec, MeasurementSchedule::quick(), 5);
        let options = SweepOptions {
            schedule: MeasurementSchedule::quick(),
            seed: 5,
            out_dir: temp_out_dir("retry"),
            threads: 1,
            retries: 2,
            inject_panic: Some(1),
            ..SweepOptions::default()
        };
        let plan = SweepPlan::new(experiments.clone())
            .journal_name("retry.journal.jsonl")
            .fail_fast(true);
        let run = run_sweep(&plan, &options).unwrap();
        assert!(!run.interrupted);
        assert_eq!(run.resumed, 0);
        assert_eq!(run.attempts[1], 3, "retries exhausted: 1 try + 2 retries");
        assert!(run
            .attempts
            .iter()
            .enumerate()
            .all(|(i, &a)| i == 1 || a == 1));
        let Some(Ok(result)) = &run.outcomes[1] else {
            panic!("point 1 must carry a result");
        };
        assert!(matches!(result.outcome, RunOutcome::Harness(_)));
        // The journaled entry remembers the attempts too.
        let journal = Journal::load(&run.journal).unwrap();
        let entry = journal
            .get(&experiments[1].point_hash())
            .expect("point 1 journaled");
        assert_eq!(entry.attempts, 3);
        std::fs::remove_dir_all(&options.out_dir).ok();
    }

    #[test]
    fn pre_tripped_shutdown_interrupts_before_dispatch() {
        let spec = tiny_spec();
        let options = SweepOptions {
            schedule: MeasurementSchedule::quick(),
            seed: 5,
            out_dir: temp_out_dir("pre-tripped"),
            threads: 2,
            ..SweepOptions::default()
        };
        options.shutdown.cancel();
        match run_figure(&spec, &options).expect("interruption is not an error") {
            FigureRun::Interrupted {
                partial,
                completed,
                total,
                journal,
            } => {
                assert!(partial.is_empty());
                assert_eq!(completed, 0);
                assert_eq!(total, 4);
                assert!(journal.exists(), "journal path must exist for the hint");
            }
            other => panic!("pre-tripped shutdown must interrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&options.out_dir).ok();
    }

    #[test]
    fn resume_skips_journaled_points_and_matches_clean_run() {
        let spec = tiny_spec();
        let out_dir = temp_out_dir("resume-unit");
        let base = SweepOptions {
            schedule: MeasurementSchedule::quick(),
            seed: 5,
            out_dir: out_dir.clone(),
            threads: 1,
            ..SweepOptions::default()
        };
        // Clean reference run.
        let clean = complete(run_figure(&spec, &base).expect("clean run"));
        let journal_path = Path::new(&out_dir).join("fig3.journal.jsonl");
        assert!(journal_path.exists());

        // Truncate the journal to its first two points (simulated crash),
        // then resume: the two journaled points are spliced, two re-run.
        let text = std::fs::read_to_string(&journal_path).unwrap();
        let truncated: String = text.lines().take(2).map(|l| format!("{l}\n")).collect();
        std::fs::write(&journal_path, truncated).unwrap();
        let resumed_options = SweepOptions {
            resume: Some(journal_path.display().to_string()),
            ..base
        };
        let resumed = complete(run_figure(&spec, &resumed_options).expect("resumed run"));
        assert_eq!(
            format_sweep_csv(&clean),
            format_sweep_csv(&resumed),
            "resumed sweep must be byte-identical to the clean run"
        );
        // The journal is whole again after the resume.
        let journal = Journal::load(&journal_path).unwrap();
        assert_eq!(journal.len(), 4);
        std::fs::remove_dir_all(&out_dir).ok();
    }

    #[test]
    fn local_and_remote_backends_write_identical_journals() {
        // The distributed byte-identity guarantee, in-process: the same
        // plan through the local pool and through a loopback worker must
        // leave byte-identical journal files.
        let spec = tiny_spec();
        let experiments =
            wormsim::presets::experiments_for(&spec, MeasurementSchedule::quick(), 1993);
        let local_dir = temp_out_dir("ident-local");
        let remote_dir = temp_out_dir("ident-remote");
        let plan = SweepPlan::new(experiments).fail_fast(true);
        let local = SweepOptions {
            schedule: MeasurementSchedule::quick(),
            out_dir: local_dir.clone(),
            threads: 2,
            ..SweepOptions::default()
        };
        run_sweep(&plan, &local).expect("local sweep");
        let worker = crate::worker::spawn_local(2);
        let remote = SweepOptions {
            schedule: MeasurementSchedule::quick(),
            out_dir: remote_dir.clone(),
            backend: BackendChoice::Remote {
                workers: vec![worker.to_string()],
            },
            ..SweepOptions::default()
        };
        run_sweep(&plan, &remote).expect("remote sweep");
        let local_bytes = std::fs::read(Path::new(&local_dir).join("sweep.journal.jsonl")).unwrap();
        let remote_bytes =
            std::fs::read(Path::new(&remote_dir).join("sweep.journal.jsonl")).unwrap();
        assert!(!local_bytes.is_empty());
        assert_eq!(
            local_bytes, remote_bytes,
            "journals must be byte-identical across backends"
        );
        std::fs::remove_dir_all(&local_dir).ok();
        std::fs::remove_dir_all(&remote_dir).ok();
    }
}

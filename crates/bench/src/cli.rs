//! Parsers for the `sweep` binary's compact command-line syntax.
//!
//! * Topologies: `torus:16x16`, `mesh:8x8x8`, bare `16x16` (torus), or the
//!   k-ary n-cube shorthand `8^3` / `torus:16^3` / `mesh:4^2`.
//! * Traffic: `uniform`, `hotspot:15,15@0.04` (several nodes separated by
//!   `+`), `local:3`, `transpose`, `bitrev`, `complement`.
//! * Loads: a comma list `0.1,0.2,0.5` or a range `0.1:1.0:0.1`.
//! * Switching: `wh` (2-flit buffers), `wh:4` (explicit depth), `vct`,
//!   `saf`.

use std::str::FromStr;
use wormsim::routing::AlgorithmKind;
use wormsim::topology::Topology;
use wormsim::{Switching, TrafficConfig};

/// Parses `torus:16x16`, `mesh:4x4x4`, `16x16`, or the k-ary n-cube
/// shorthand `k^n` (`8^3` is the paper literature's 8-ary 3-cube, i.e.
/// `torus:8x8x8`).
///
/// # Errors
///
/// Returns a human-readable message for malformed input.
pub fn parse_topology(s: &str) -> Result<Topology, String> {
    let (kind, dims_str) = match s.split_once(':') {
        Some((kind, rest)) => (kind, rest),
        None => ("torus", s),
    };
    let dims: Vec<u16> = if let Some((k_str, n_str)) = dims_str.split_once('^') {
        let k = u16::from_str(k_str).map_err(|_| format!("bad radix '{k_str}' in '{s}'"))?;
        let n = usize::from_str(n_str)
            .map_err(|_| format!("bad dimension count '{n_str}' in '{s}'"))?;
        if n == 0 || n > 16 {
            return Err(format!("dimension count {n} out of range 1..=16 in '{s}'"));
        }
        vec![k; n]
    } else {
        dims_str
            .split('x')
            .map(|d| u16::from_str(d).map_err(|_| format!("bad dimension '{d}' in '{s}'")))
            .collect::<Result<_, _>>()?
    };
    match kind {
        "torus" => Topology::try_torus(&dims).map_err(|e| e.to_string()),
        "mesh" => Topology::try_mesh(&dims).map_err(|e| e.to_string()),
        other => Err(format!("unknown topology kind '{other}' (torus|mesh)")),
    }
}

/// Parses a comma-separated algorithm list (`phop,ecube,...`); `all` and
/// `paper` expand to the paper's six, `extended` adds wfirst and naive.
///
/// # Errors
///
/// Returns a human-readable message for unknown names.
pub fn parse_algorithms(s: &str) -> Result<Vec<AlgorithmKind>, String> {
    match s {
        "all" | "paper" => Ok(AlgorithmKind::all().to_vec()),
        "extended" => Ok(AlgorithmKind::extended().to_vec()),
        list => list
            .split(',')
            .map(|name| name.parse::<AlgorithmKind>().map_err(|e| e.to_string()))
            .collect(),
    }
}

/// Parses the traffic mini-language described in the module docs.
///
/// # Errors
///
/// Returns a human-readable message for malformed input.
pub fn parse_traffic(s: &str) -> Result<TrafficConfig, String> {
    let (kind, rest) = match s.split_once(':') {
        Some((kind, rest)) => (kind, Some(rest)),
        None => (s, None),
    };
    match (kind, rest) {
        ("uniform", None) => Ok(TrafficConfig::Uniform),
        ("transpose", None) => Ok(TrafficConfig::Transpose),
        ("bitrev" | "bit-reversal", None) => Ok(TrafficConfig::BitReversal),
        ("complement", None) => Ok(TrafficConfig::Complement),
        ("local", Some(r)) => Ok(TrafficConfig::Local {
            radius: u16::from_str(r).map_err(|_| format!("bad radius '{r}'"))?,
        }),
        ("hotspot", Some(spec)) => {
            let (nodes_str, frac_str) = spec
                .split_once('@')
                .ok_or_else(|| format!("hotspot needs '@fraction' in '{s}'"))?;
            let nodes: Vec<Vec<u16>> = nodes_str
                .split('+')
                .map(|node| {
                    node.split(',')
                        .map(|c| u16::from_str(c).map_err(|_| format!("bad coordinate '{c}'")))
                        .collect()
                })
                .collect::<Result<_, _>>()?;
            let fraction =
                f64::from_str(frac_str).map_err(|_| format!("bad fraction '{frac_str}'"))?;
            Ok(TrafficConfig::Hotspot { nodes, fraction })
        }
        _ => Err(format!(
            "unknown traffic '{s}' (uniform|hotspot:x,y@f|local:r|transpose|bitrev|complement)"
        )),
    }
}

/// Parses `0.1,0.3,0.5` or `start:end:step` (inclusive of `end` within a
/// half-step tolerance).
///
/// # Errors
///
/// Returns a human-readable message for malformed or empty input.
pub fn parse_loads(s: &str) -> Result<Vec<f64>, String> {
    let parts: Vec<&str> = s.split(':').collect();
    let loads = match parts.as_slice() {
        [_] => s
            .split(',')
            .map(|l| f64::from_str(l).map_err(|_| format!("bad load '{l}'")))
            .collect::<Result<Vec<f64>, _>>()?,
        [start, end, step] => {
            let start = f64::from_str(start).map_err(|_| format!("bad start '{start}'"))?;
            let end = f64::from_str(end).map_err(|_| format!("bad end '{end}'"))?;
            let step = f64::from_str(step).map_err(|_| format!("bad step '{step}'"))?;
            if step <= 0.0 || end < start {
                return Err(format!("empty range '{s}'"));
            }
            let mut loads = Vec::new();
            let mut x = start;
            while x <= end + step / 2.0 {
                loads.push((x * 1e9).round() / 1e9);
                x += step;
            }
            loads
        }
        _ => return Err(format!("bad loads '{s}' (list or start:end:step)")),
    };
    if loads.is_empty() || loads.iter().any(|&l| !(0.0..=1.0).contains(&l) || l == 0.0) {
        return Err(format!("loads out of (0, 1] in '{s}'"));
    }
    Ok(loads)
}

/// Parses `wh`, `wh:<depth>`, `vct`, or `saf`.
///
/// # Errors
///
/// Returns a human-readable message for malformed input.
pub fn parse_switching(s: &str) -> Result<Switching, String> {
    match s.split_once(':') {
        None => match s {
            "wh" | "wormhole" => Ok(Switching::wormhole()),
            "vct" | "cut-through" => Ok(Switching::VirtualCutThrough),
            "saf" | "store-and-forward" => Ok(Switching::StoreAndForward),
            other => Err(format!("unknown switching '{other}' (wh|wh:N|vct|saf)")),
        },
        Some(("wh", depth)) => {
            let buffer_depth =
                u32::from_str(depth).map_err(|_| format!("bad buffer depth '{depth}'"))?;
            if buffer_depth == 0 {
                return Err("buffer depth must be at least 1".to_owned());
            }
            Ok(Switching::Wormhole { buffer_depth })
        }
        Some(_) => Err(format!("unknown switching '{s}'")),
    }
}

/// Parses a worker-thread count: a positive integer (`--threads`).
///
/// # Errors
///
/// Returns a usage message for non-integers and for `0`, which would
/// deadlock the work-stealing loop rather than mean "auto".
pub fn parse_threads(s: &str) -> Result<usize, String> {
    let threads = usize::from_str(s)
        .map_err(|_| format!("bad thread count '{s}' (expected a positive integer)"))?;
    if threads == 0 {
        return Err("thread count must be at least 1".to_owned());
    }
    Ok(threads)
}

/// Parses a sampling stride in cycles (`--sample-every`): a positive
/// integer.
///
/// # Errors
///
/// Returns a usage message for non-integers and for `0`; callers that want
/// the observe layer's default stride should omit the flag instead.
pub fn parse_sample_every(s: &str) -> Result<u64, String> {
    let every = u64::from_str(s)
        .map_err(|_| format!("bad sample stride '{s}' (expected a positive integer)"))?;
    if every == 0 {
        return Err("sample stride must be at least 1 cycle".to_owned());
    }
    Ok(every)
}

/// Parses a base RNG seed (`--seed`).
///
/// # Errors
///
/// Returns a usage message for values that are not unsigned integers.
pub fn parse_seed(s: &str) -> Result<u64, String> {
    u64::from_str(s).map_err(|_| format!("bad seed '{s}' (expected an unsigned integer)"))
}

/// Parses a per-run cycle budget (`--cycle-budget`): a positive integer.
///
/// # Errors
///
/// Returns a usage message for non-integers and for `0`; callers that want
/// no cap should omit the flag instead.
pub fn parse_cycle_budget(s: &str) -> Result<u64, String> {
    let budget = u64::from_str(s)
        .map_err(|_| format!("bad cycle budget '{s}' (expected a positive integer)"))?;
    if budget == 0 {
        return Err("cycle budget must be at least 1".to_owned());
    }
    Ok(budget)
}

/// Parses a per-run wall-clock budget in seconds (`--wall-budget`): a
/// positive number, fractions allowed.
///
/// # Errors
///
/// Returns a usage message for values that are not positive finite numbers.
pub fn parse_wall_budget(s: &str) -> Result<f64, String> {
    let budget = f64::from_str(s)
        .map_err(|_| format!("bad wall budget '{s}' (expected seconds, e.g. 30 or 2.5)"))?;
    if !budget.is_finite() || budget <= 0.0 {
        return Err("wall budget must be a positive number of seconds".to_owned());
    }
    Ok(budget)
}

/// Parses a retry count for transient point outcomes (`--retries`): zero
/// or more extra attempts.
///
/// # Errors
///
/// Returns a usage message for non-integers.
pub fn parse_retries(s: &str) -> Result<u32, String> {
    u32::from_str(s).map_err(|_| format!("bad retry count '{s}' (expected an integer, 0 disables)"))
}

/// Parses the crash-simulation threshold (`--fail-after-points`): a
/// positive number of journaled points after which the process aborts.
///
/// # Errors
///
/// Returns a usage message for non-integers and for `0` (the process would
/// abort before journaling anything, proving nothing).
pub fn parse_fail_after(s: &str) -> Result<usize, String> {
    let points = usize::from_str(s)
        .map_err(|_| format!("bad point count '{s}' (expected a positive integer)"))?;
    if points == 0 {
        return Err("--fail-after-points must be at least 1".to_owned());
    }
    Ok(points)
}

/// Parses a supervision interval in seconds (`--point-deadline`,
/// `--hedge-after`): a positive number, fractions allowed.
///
/// # Errors
///
/// Returns a usage message (naming `flag`) for values that are not
/// positive finite numbers.
pub fn parse_supervise_secs(flag: &str, s: &str) -> Result<f64, String> {
    let secs = f64::from_str(s)
        .map_err(|_| format!("bad {flag} '{s}' (expected seconds, e.g. 30 or 2.5)"))?;
    if !secs.is_finite() || secs <= 0.0 {
        return Err(format!("{flag} must be a positive number of seconds"));
    }
    Ok(secs)
}

/// Parses the poison-point dispatch budget (`--quarantine-after`): how
/// many dispatches a point may burn before the supervisor quarantines it.
/// `0` disables quarantine.
///
/// # Errors
///
/// Returns a usage message for non-integers.
pub fn parse_quarantine_after(s: &str) -> Result<u64, String> {
    u64::from_str(s)
        .map_err(|_| format!("bad dispatch budget '{s}' (expected an integer, 0 disables)"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topologies() {
        assert_eq!(parse_topology("16x16").unwrap(), Topology::torus(&[16, 16]));
        assert_eq!(
            parse_topology("torus:8x4").unwrap(),
            Topology::torus(&[8, 4])
        );
        assert_eq!(
            parse_topology("mesh:4x4x4").unwrap(),
            Topology::mesh(&[4, 4, 4])
        );
        assert!(parse_topology("ring:9").is_err());
        assert!(parse_topology("torus:1x4").is_err());
        assert!(parse_topology("16xsixteen").is_err());
    }

    #[test]
    fn k_ary_n_cube_shorthand() {
        assert_eq!(parse_topology("8^3").unwrap(), Topology::torus(&[8, 8, 8]));
        assert_eq!(
            parse_topology("torus:16^3").unwrap(),
            Topology::k_ary_n_cube(16, 3)
        );
        assert_eq!(parse_topology("mesh:4^2").unwrap(), Topology::mesh(&[4, 4]));
        assert!(parse_topology("8^0").is_err());
        assert!(parse_topology("8^99").is_err());
        assert!(parse_topology("k^3").is_err());
        // Channel-id overflow surfaces as a parse error, not a wrap.
        assert!(parse_topology("46341x46341").is_err());
    }

    #[test]
    fn algorithms() {
        assert_eq!(parse_algorithms("all").unwrap().len(), 6);
        assert_eq!(parse_algorithms("extended").unwrap().len(), 8);
        assert_eq!(
            parse_algorithms("phop,ecube").unwrap(),
            vec![AlgorithmKind::PositiveHop, AlgorithmKind::Ecube]
        );
        assert!(parse_algorithms("phop,warp").is_err());
    }

    #[test]
    fn traffic() {
        assert_eq!(parse_traffic("uniform").unwrap(), TrafficConfig::Uniform);
        assert_eq!(
            parse_traffic("local:3").unwrap(),
            TrafficConfig::Local { radius: 3 }
        );
        assert_eq!(
            parse_traffic("hotspot:15,15@0.04").unwrap(),
            TrafficConfig::Hotspot {
                nodes: vec![vec![15, 15]],
                fraction: 0.04
            }
        );
        assert_eq!(
            parse_traffic("hotspot:3,3+11,11@0.08").unwrap(),
            TrafficConfig::Hotspot {
                nodes: vec![vec![3, 3], vec![11, 11]],
                fraction: 0.08
            }
        );
        assert!(parse_traffic("hotspot:15,15").is_err());
        assert!(parse_traffic("lavaflow").is_err());
    }

    #[test]
    fn loads() {
        assert_eq!(parse_loads("0.1,0.5").unwrap(), vec![0.1, 0.5]);
        let range = parse_loads("0.2:0.6:0.2").unwrap();
        assert_eq!(range.len(), 3);
        assert!((range[2] - 0.6).abs() < 1e-9);
        assert!(parse_loads("0:1:0.1").is_err(), "zero load rejected");
        assert!(parse_loads("0.5:0.1:0.1").is_err());
        assert!(parse_loads("a,b").is_err());
    }

    #[test]
    fn threads() {
        assert_eq!(parse_threads("8").unwrap(), 8);
        assert!(parse_threads("0").is_err(), "zero workers rejected");
        assert!(parse_threads("-2").is_err());
        assert!(parse_threads("many").is_err());
        assert!(parse_threads("1.5").is_err());
    }

    #[test]
    fn sample_strides() {
        assert_eq!(parse_sample_every("1000").unwrap(), 1000);
        assert_eq!(parse_sample_every("1").unwrap(), 1);
        assert!(parse_sample_every("0").is_err(), "zero stride rejected");
        assert!(parse_sample_every("-5").is_err());
        assert!(parse_sample_every("often").is_err());
    }

    #[test]
    fn seeds() {
        assert_eq!(parse_seed("1993").unwrap(), 1993);
        assert!(parse_seed("0x1f").is_err());
        assert!(parse_seed("-1").is_err());
        assert!(parse_seed("seed").is_err());
    }

    #[test]
    fn budgets() {
        assert_eq!(parse_cycle_budget("50000").unwrap(), 50_000);
        assert!(parse_cycle_budget("0").is_err(), "zero cycles rejected");
        assert!(parse_cycle_budget("soon").is_err());
        assert!((parse_wall_budget("2.5").unwrap() - 2.5).abs() < 1e-12);
        assert!((parse_wall_budget("30").unwrap() - 30.0).abs() < 1e-12);
        assert!(parse_wall_budget("0").is_err(), "zero seconds rejected");
        assert!(parse_wall_budget("-1").is_err());
        assert!(parse_wall_budget("inf").is_err());
        assert!(parse_wall_budget("later").is_err());
    }

    #[test]
    fn switching() {
        assert_eq!(parse_switching("wh").unwrap(), Switching::wormhole());
        assert_eq!(
            parse_switching("wh:4").unwrap(),
            Switching::Wormhole { buffer_depth: 4 }
        );
        assert_eq!(
            parse_switching("vct").unwrap(),
            Switching::VirtualCutThrough
        );
        assert_eq!(parse_switching("saf").unwrap(), Switching::StoreAndForward);
        assert!(parse_switching("wh:0").is_err());
        assert!(parse_switching("teleport").is_err());
    }
}

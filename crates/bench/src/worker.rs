//! The `wormsim-worker` server: runs sweep points submitted over HTTP.
//!
//! A worker is a headless process that accepts serialized
//! [`Experiment`]s, runs them through the same retrying executor the
//! local backend uses ([`execute_point`](crate::backend::execute_point)),
//! and serves results back as [`RunResult`] JSON. The protocol (see
//! `docs/DISTRIBUTION.md`) has four endpoints:
//!
//! * `GET /handshake` — wire protocol version, config digest, slot count.
//! * `POST /submit` — enqueue a job (rejected with 409 on digest
//!   mismatch, 400 on undecodable payloads).
//! * `GET /status?job=ID` — `pending`, `done` (with the result), or
//!   `failed` (with the configuration error).
//! * `POST /cancel` — trip every job's cancellation token.
//!
//! Simulation results are bit-deterministic in the experiment config, so
//! a worker on any machine produces byte-identical result JSON — the
//! foundation of the distributed byte-identity guarantee.

use crate::backend::{execute_point, PointJob};
use crate::http;
use std::collections::{HashMap, VecDeque};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use wormsim::observe::{json, JsonObject, JsonRecord};
use wormsim::{wire_digest, CancelToken, Experiment, ExperimentError, RunResult, WIRE_PROTOCOL};

/// Configuration for [`serve`].
pub struct WorkerConfig {
    /// Listen address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub listen: String,
    /// Simulation slots (concurrent points). At least one.
    pub threads: usize,
}

enum JobPhase {
    Queued,
    Running,
    Done(Result<RunResult, ExperimentError>, u64),
}

struct JobRecord {
    experiment: Experiment,
    point_hash: String,
    retries: u32,
    resumed_from: Option<String>,
    cancel: CancelToken,
    phase: JobPhase,
}

struct WorkerState {
    queue: VecDeque<u64>,
    jobs: HashMap<u64, JobRecord>,
}

struct Shared {
    state: Mutex<WorkerState>,
    ready: Condvar,
    digest: String,
    threads: usize,
}

/// Binds the listen address, announces the bound port on stdout (so
/// wrappers can bind port 0 and parse the real port), and serves forever.
///
/// # Errors
///
/// Propagates bind/accept failures; per-connection errors are contained.
pub fn serve(config: &WorkerConfig) -> std::io::Result<()> {
    let listener = TcpListener::bind(&config.listen)?;
    let addr = listener.local_addr()?;
    use std::io::Write as _;
    println!("wormsim-worker listening on {addr}");
    std::io::stdout().flush()?;
    serve_on(listener, config.threads.max(1))
}

fn serve_on(listener: TcpListener, threads: usize) -> std::io::Result<()> {
    serve_until(listener, threads, None)
}

fn serve_until(
    listener: TcpListener,
    threads: usize,
    stop: Option<Arc<std::sync::atomic::AtomicBool>>,
) -> std::io::Result<()> {
    let shared = Arc::new(Shared {
        state: Mutex::new(WorkerState {
            queue: VecDeque::new(),
            jobs: HashMap::new(),
        }),
        ready: Condvar::new(),
        digest: wire_digest(),
        threads,
    });
    for _ in 0..threads {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || sim_loop(&shared));
    }
    for stream in listener.incoming() {
        if stop
            .as_ref()
            .is_some_and(|f| f.load(std::sync::atomic::Ordering::SeqCst))
        {
            break;
        }
        match stream {
            Ok(mut stream) => handle_connection(&mut stream, &shared),
            Err(err) => eprintln!("wormsim-worker: accept failed: {err}"),
        }
    }
    Ok(())
}

/// Test hook: serve on an ephemeral loopback port from a detached thread
/// (dies with the test process) and return the bound address.
#[cfg(test)]
pub(crate) fn spawn_local(threads: usize) -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    std::thread::spawn(move || {
        let _ = serve_on(listener, threads);
    });
    addr
}

/// Test hook: a [`spawn_local`] worker with a kill switch. [`kill`]
/// drops the listener, so from the orchestrator's point of view the
/// worker process crashed — every subsequent RPC is refused — while any
/// point already running keeps its (detached) simulation thread busy,
/// exactly like a host that died mid-job.
///
/// [`kill`]: KillableWorker::kill
#[cfg(test)]
pub(crate) struct KillableWorker {
    pub(crate) addr: std::net::SocketAddr,
    stop: Arc<std::sync::atomic::AtomicBool>,
}

#[cfg(test)]
impl KillableWorker {
    pub(crate) fn kill(&self) {
        self.stop.store(true, std::sync::atomic::Ordering::SeqCst);
        // Poke the accept loop so it observes the flag and drops the
        // socket; the connection itself is never answered.
        let _ = TcpStream::connect(self.addr);
    }
}

#[cfg(test)]
pub(crate) fn spawn_killable(threads: usize) -> KillableWorker {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    std::thread::spawn(move || {
        let _ = serve_until(listener, threads, Some(flag));
    });
    KillableWorker { addr, stop }
}

fn sim_loop(shared: &Shared) {
    loop {
        let (id, job, cancel) = {
            let mut state = shared.state.lock().expect("no poisoned worker state");
            let id = loop {
                if let Some(id) = state.queue.pop_front() {
                    break id;
                }
                state = shared.ready.wait(state).expect("no poisoned worker state");
            };
            let record = state.jobs.get_mut(&id).expect("queued job has a record");
            record.phase = JobPhase::Running;
            let job = PointJob {
                experiment: record
                    .experiment
                    .clone()
                    .cancel_token(record.cancel.clone()),
                index: id as usize,
                point_hash: record.point_hash.clone(),
                retries: record.retries,
                inject_panic: false,
                resumed_from: record.resumed_from.clone(),
            };
            (id, job, record.cancel.clone())
        };
        let (result, attempts) = execute_point(&job, &cancel);
        let mut state = shared.state.lock().expect("no poisoned worker state");
        if let Some(record) = state.jobs.get_mut(&id) {
            record.phase = JobPhase::Done(result, attempts);
        }
    }
}

fn handle_connection(stream: &mut TcpStream, shared: &Shared) {
    let request = match http::read_request(stream) {
        Ok(request) => request,
        Err(err) => {
            let _ = http::write_response(stream, 400, &error_body(&err.to_string()));
            return;
        }
    };
    let (path, query) = request
        .target
        .split_once('?')
        .unwrap_or((request.target.as_str(), ""));
    let (status, body) = match (request.method.as_str(), path) {
        ("GET", "/handshake") => handshake(shared),
        ("POST", "/submit") => submit(&request.body, shared),
        ("GET", "/status") => job_status(query, shared),
        ("POST", "/cancel") => cancel_all(shared),
        _ => (404, error_body("unknown endpoint")),
    };
    let _ = http::write_response(stream, status, &body);
}

fn error_body(message: &str) -> String {
    let mut out = String::new();
    let mut obj = JsonObject::begin(&mut out);
    obj.field_str("error", message);
    obj.finish();
    out
}

fn handshake(shared: &Shared) -> (u16, String) {
    let mut out = String::new();
    let mut obj = JsonObject::begin(&mut out);
    obj.field_u64("wire", u64::from(WIRE_PROTOCOL));
    obj.field_str("digest", &shared.digest);
    obj.field_u64("threads", shared.threads as u64);
    obj.finish();
    (200, out)
}

fn submit(body: &str, shared: &Shared) -> (u16, String) {
    let value = match json::from_str(body) {
        Ok(value) => value,
        Err(err) => return (400, error_body(&format!("unparseable submit body: {err}"))),
    };
    let Some(digest) = value.get("digest").and_then(|v| v.as_str()) else {
        return (400, error_body("submit body missing string field `digest`"));
    };
    if digest != shared.digest {
        return (
            409,
            error_body(&format!(
                "wire digest mismatch: orchestrator {digest}, worker {} — rebuild both from the same source",
                shared.digest
            )),
        );
    }
    let Some(id) = value.get("job").and_then(json::Value::as_u64) else {
        return (400, error_body("submit body missing integer field `job`"));
    };
    let retries = value
        .get("retries")
        .and_then(json::Value::as_u64)
        .unwrap_or(0) as u32;
    let resumed_from = value
        .get("resumed_from")
        .and_then(|v| v.as_str())
        .map(str::to_owned);
    let Some(experiment_value) = value.get("experiment") else {
        return (
            400,
            error_body("submit body missing object field `experiment`"),
        );
    };
    let experiment = match Experiment::from_wire_json(experiment_value) {
        Ok(experiment) => experiment,
        Err(err) => return (400, error_body(&format!("undecodable experiment: {err}"))),
    };
    let point_hash = experiment.point_hash();
    let mut state = shared.state.lock().expect("no poisoned worker state");
    if state.jobs.contains_key(&id) {
        return (400, error_body(&format!("duplicate job id {id}")));
    }
    state.jobs.insert(
        id,
        JobRecord {
            experiment,
            point_hash,
            retries,
            resumed_from,
            cancel: CancelToken::new(),
            phase: JobPhase::Queued,
        },
    );
    state.queue.push_back(id);
    drop(state);
    shared.ready.notify_one();
    let mut out = String::new();
    let mut obj = JsonObject::begin(&mut out);
    obj.field_u64("job", id);
    obj.finish();
    (200, out)
}

fn job_status(query: &str, shared: &Shared) -> (u16, String) {
    let Some(id) = query
        .strip_prefix("job=")
        .and_then(|raw| raw.parse::<u64>().ok())
    else {
        return (400, error_body("status query must be ?job=ID"));
    };
    let state = shared.state.lock().expect("no poisoned worker state");
    let Some(record) = state.jobs.get(&id) else {
        return (404, error_body(&format!("unknown job {id}")));
    };
    let mut out = String::new();
    let mut obj = JsonObject::begin(&mut out);
    match &record.phase {
        JobPhase::Queued | JobPhase::Running => {
            obj.field_str("state", "pending");
        }
        JobPhase::Done(Ok(result), attempts) => {
            obj.field_str("state", "done");
            obj.field_u64("attempts", *attempts);
            obj.field_raw("result", &result.to_json());
        }
        JobPhase::Done(Err(err), attempts) => {
            obj.field_str("state", "failed");
            obj.field_u64("attempts", *attempts);
            obj.field_str("error", &err.to_string());
        }
    }
    obj.finish();
    (200, out)
}

fn cancel_all(shared: &Shared) -> (u16, String) {
    let state = shared.state.lock().expect("no poisoned worker state");
    let mut cancelled = 0u64;
    for record in state.jobs.values() {
        record.cancel.cancel();
        cancelled += 1;
    }
    drop(state);
    let mut out = String::new();
    let mut obj = JsonObject::begin(&mut out);
    obj.field_u64("cancelled", cancelled);
    obj.finish();
    (200, out)
}

//! The `wormsim-worker` server: runs sweep points submitted over HTTP.
//!
//! A worker is a headless process that accepts serialized
//! [`Experiment`]s, runs them through the same retrying executor the
//! local backend uses ([`execute_point`](crate::backend::execute_point)),
//! and serves results back as [`RunResult`] JSON. The protocol (see
//! `docs/DISTRIBUTION.md`) has four endpoints:
//!
//! * `GET /handshake` — wire protocol version, config digest, slot
//!   count, draining flag.
//! * `POST /submit` — enqueue a job (rejected with 409 on digest
//!   mismatch, 400 on undecodable payloads, 503 while draining).
//! * `GET /status?job=ID` — `pending` (with the job's simulation
//!   heartbeat, so a supervisor can tell hung from slow), `done` (with
//!   the result and any retry decision), or `failed` (with the
//!   configuration error).
//! * `POST /cancel` — trip every job's cancellation token.
//!
//! Simulation results are bit-deterministic in the experiment config, so
//! a worker on any machine produces byte-identical result JSON — the
//! foundation of the distributed byte-identity guarantee.
//!
//! Two robustness features live here rather than in the orchestrator:
//!
//! * **Graceful drain.** SIGTERM flips the worker into draining mode:
//!   `/submit` answers 503, status responses carry `"draining": true`,
//!   in-flight runs get up to `--drain-secs` to finish (then are
//!   cancelled), and the process exits 0. The orchestrator treats a
//!   draining worker as zero-capacity, not dead.
//! * **Chaos injection.** `--chaos <spec>` arms a seeded [`ChaosPlan`]
//!   that crashes or stalls the worker on the Nth submit and
//!   delays/drops/corrupts/truncates responses — the adversarial rig the
//!   sweep supervisor is validated against (`chaos_soak`).

use crate::backend::{execute_point, PointJob};
use crate::chaos::{salt, ChaosPlan};
use crate::http;
use std::collections::{HashMap, VecDeque};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use wormsim::observe::{json, JsonObject, JsonRecord};
use wormsim::{wire_digest, CancelToken, Experiment, ExperimentError, RunResult, WIRE_PROTOCOL};

/// Configuration for [`serve`].
pub struct WorkerConfig {
    /// Listen address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub listen: String,
    /// Simulation slots (concurrent points). At least one.
    pub threads: usize,
    /// Seeded fault injection (`--chaos`); default injects nothing.
    pub chaos: ChaosPlan,
    /// Seconds SIGTERM waits for in-flight runs before cancelling them.
    pub drain_secs: u64,
}

/// Process exit status of a chaos-injected crash, distinct from real
/// failures so the soak harness can assert the crash it asked for.
pub const CHAOS_CRASH_EXIT: i32 = 42;

const SIGTERM: i32 = 15;

/// Tripped by SIGTERM. Process-global because a signal handler has no
/// other way to reach server state.
static DRAINING: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigterm(_signum: i32) {
    // Only async-signal-safe work here: one atomic store.
    DRAINING.store(true, Ordering::SeqCst);
}

extern "C" {
    // Vendored libc-free binding, same as the SIGINT hook in lib.rs.
    fn signal(signum: i32, handler: usize) -> usize;
}

enum JobPhase {
    Queued,
    /// Chaos-stalled: accepted, reported pending, never started — the
    /// simulation heartbeat stays frozen at zero forever.
    Stalled,
    Running,
    Done(Result<RunResult, ExperimentError>, u64, Option<String>),
}

struct JobRecord {
    experiment: Experiment,
    point_hash: String,
    retries: u32,
    resumed_from: Option<String>,
    cancel: CancelToken,
    phase: JobPhase,
}

struct WorkerState {
    queue: VecDeque<u64>,
    jobs: HashMap<u64, JobRecord>,
}

struct Shared {
    state: Mutex<WorkerState>,
    ready: Condvar,
    digest: String,
    threads: usize,
    chaos: ChaosPlan,
    /// Accepted submits, for the crash/stall-on-Nth-submit injections.
    submits: AtomicU64,
    /// Responses written, indexing the seeded chaos decision streams.
    responses: AtomicU64,
}

/// Binds the listen address, announces the bound port on stdout (so
/// wrappers can bind port 0 and parse the real port), installs the
/// SIGTERM drain handler, and serves until killed or drained.
///
/// # Errors
///
/// Propagates bind/accept failures; per-connection errors are contained.
pub fn serve(config: &WorkerConfig) -> std::io::Result<()> {
    let listener = TcpListener::bind(&config.listen)?;
    let addr = listener.local_addr()?;
    use std::io::Write as _;
    println!("wormsim-worker listening on {addr}");
    std::io::stdout().flush()?;
    // SAFETY: `on_sigterm` is async-signal-safe (a single atomic store)
    // and has the exact `extern "C" fn(i32)` shape signal(2) expects; the
    // handler address stays valid for the process lifetime.
    unsafe {
        signal(SIGTERM, on_sigterm as *const () as usize);
    }
    serve_until(
        listener,
        config.threads.max(1),
        None,
        config.chaos.clone(),
        Some(config.drain_secs),
    )
}

#[cfg(test)]
fn serve_on(listener: TcpListener, threads: usize) -> std::io::Result<()> {
    serve_until(listener, threads, None, ChaosPlan::default(), None)
}

fn serve_until(
    listener: TcpListener,
    threads: usize,
    stop: Option<Arc<AtomicBool>>,
    chaos: ChaosPlan,
    drain_secs: Option<u64>,
) -> std::io::Result<()> {
    let shared = Arc::new(Shared {
        state: Mutex::new(WorkerState {
            queue: VecDeque::new(),
            jobs: HashMap::new(),
        }),
        ready: Condvar::new(),
        digest: wire_digest(),
        threads,
        chaos,
        submits: AtomicU64::new(0),
        responses: AtomicU64::new(0),
    });
    for _ in 0..threads {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || sim_loop(&shared));
    }
    if let Some(drain_secs) = drain_secs {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || drain_watcher(&shared, drain_secs));
    }
    for stream in listener.incoming() {
        if stop
            .as_ref()
            .is_some_and(|f| f.load(std::sync::atomic::Ordering::SeqCst))
        {
            break;
        }
        match stream {
            Ok(mut stream) => handle_connection(&mut stream, &shared),
            Err(err) => eprintln!("wormsim-worker: accept failed: {err}"),
        }
    }
    Ok(())
}

/// Waits for SIGTERM, then drains: no new submits (the connection handler
/// rejects them), in-flight runs get `drain_secs` to finish, stragglers
/// are cancelled, a short linger lets the orchestrator collect final
/// statuses, and the process exits 0.
fn drain_watcher(shared: &Shared, drain_secs: u64) {
    while !DRAINING.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("wormsim-worker: SIGTERM — draining in-flight runs (up to {drain_secs}s)");
    let deadline = Instant::now() + Duration::from_secs(drain_secs);
    loop {
        let idle = {
            let state = shared.state.lock().expect("no poisoned worker state");
            state.queue.is_empty()
                && state
                    .jobs
                    .values()
                    .all(|r| matches!(r.phase, JobPhase::Done(..) | JobPhase::Stalled))
        };
        if idle {
            break;
        }
        if Instant::now() >= deadline {
            eprintln!("wormsim-worker: drain budget exhausted; cancelling in-flight runs");
            let state = shared.state.lock().expect("no poisoned worker state");
            for record in state.jobs.values() {
                record.cancel.cancel();
            }
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    // Give the orchestrator one last polling window to read the final
    // statuses off this socket before it disappears.
    std::thread::sleep(Duration::from_secs(1));
    eprintln!("wormsim-worker: drained; exiting");
    std::process::exit(0);
}

/// Test hook: serve on an ephemeral loopback port from a detached thread
/// (dies with the test process) and return the bound address.
#[cfg(test)]
pub(crate) fn spawn_local(threads: usize) -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    std::thread::spawn(move || {
        let _ = serve_on(listener, threads);
    });
    addr
}

/// Test hook: an in-process worker with a chaos plan. Crash injections
/// would kill the test process, so callers stick to the response-level
/// injections (delay/drop/corrupt/truncate) and stalls.
#[cfg(test)]
pub(crate) fn spawn_chaotic(threads: usize, chaos: ChaosPlan) -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    std::thread::spawn(move || {
        let _ = serve_until(listener, threads, None, chaos, None);
    });
    addr
}

/// Test hook: a [`spawn_local`] worker with a kill switch. [`kill`]
/// drops the listener, so from the orchestrator's point of view the
/// worker process crashed — every subsequent RPC is refused — while any
/// point already running keeps its (detached) simulation thread busy,
/// exactly like a host that died mid-job.
///
/// [`kill`]: KillableWorker::kill
#[cfg(test)]
pub(crate) struct KillableWorker {
    pub(crate) addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
}

#[cfg(test)]
impl KillableWorker {
    pub(crate) fn kill(&self) {
        self.stop.store(true, std::sync::atomic::Ordering::SeqCst);
        // Poke the accept loop so it observes the flag and drops the
        // socket; the connection itself is never answered.
        let _ = TcpStream::connect(self.addr);
    }
}

#[cfg(test)]
pub(crate) fn spawn_killable(threads: usize) -> KillableWorker {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    std::thread::spawn(move || {
        let _ = serve_until(listener, threads, Some(flag), ChaosPlan::default(), None);
    });
    KillableWorker { addr, stop }
}

fn sim_loop(shared: &Shared) {
    loop {
        let (id, job, cancel) = {
            let mut state = shared.state.lock().expect("no poisoned worker state");
            let id = loop {
                if let Some(id) = state.queue.pop_front() {
                    break id;
                }
                state = shared.ready.wait(state).expect("no poisoned worker state");
            };
            let record = state.jobs.get_mut(&id).expect("queued job has a record");
            record.phase = JobPhase::Running;
            let job = PointJob {
                experiment: record
                    .experiment
                    .clone()
                    .cancel_token(record.cancel.clone()),
                index: id as usize,
                point_hash: record.point_hash.clone(),
                retries: record.retries,
                inject_panic: false,
                resumed_from: record.resumed_from.clone(),
            };
            (id, job, record.cancel.clone())
        };
        let (result, attempts, retry_decision) = execute_point(&job, &cancel);
        let mut state = shared.state.lock().expect("no poisoned worker state");
        if let Some(record) = state.jobs.get_mut(&id) {
            record.phase = JobPhase::Done(result, attempts, retry_decision);
        }
    }
}

fn handle_connection(stream: &mut TcpStream, shared: &Shared) {
    let request = match http::read_request(stream) {
        Ok(request) => request,
        Err(err) => {
            let _ = http::write_response(stream, 400, &error_body(&err.to_string()));
            return;
        }
    };
    let (path, query) = request
        .target
        .split_once('?')
        .unwrap_or((request.target.as_str(), ""));
    let draining = DRAINING.load(Ordering::SeqCst);
    let (status, body) = match (request.method.as_str(), path) {
        ("GET", "/handshake") => handshake(shared, draining),
        ("POST", "/submit") if draining => (
            503,
            error_body("worker is draining; not accepting new jobs"),
        ),
        ("POST", "/submit") => submit(&request.body, shared),
        ("GET", "/status") => job_status(query, shared, draining),
        ("POST", "/cancel") => cancel_all(shared),
        _ => (404, error_body("unknown endpoint")),
    };
    respond_with_chaos(stream, shared, path, status, &body);
}

/// Writes one response through the chaos plan: maybe delayed, dropped,
/// corrupted, truncated, or (handshakes only) dribbled out slow-loris
/// style. An inactive plan is a straight [`http::write_response`].
///
/// `/handshake` bodies are exempt from drop/corrupt/truncate — the
/// orchestrator's connect is deliberately unforgiving (a garbled
/// handshake means a wrong-version worker), and a chaos worker still has
/// to be able to join the pool it is sabotaging. `slow-handshake-ms`
/// covers that path instead.
fn respond_with_chaos(
    stream: &mut TcpStream,
    shared: &Shared,
    path: &str,
    status: u16,
    body: &str,
) {
    let chaos = &shared.chaos;
    if !chaos.is_active() {
        let _ = http::write_response(stream, status, body);
        return;
    }
    let n = shared.responses.fetch_add(1, Ordering::SeqCst);
    if chaos.delay_p > 0.0 && chaos.coin(salt::DELAY, n) < chaos.delay_p {
        std::thread::sleep(Duration::from_millis(chaos.delay_ms));
    }
    if path == "/handshake" {
        if chaos.slow_handshake_ms > 0 {
            let rendered = http::render_response(status, body);
            let bytes = rendered.as_bytes();
            let pause = Duration::from_millis((chaos.slow_handshake_ms / 16).max(1));
            for chunk in bytes.chunks(bytes.len().div_ceil(16).max(1)) {
                if http::write_raw(stream, chunk).is_err() {
                    return;
                }
                std::thread::sleep(pause);
            }
            return;
        }
        let _ = http::write_response(stream, status, body);
        return;
    }
    if chaos.drop_p > 0.0 && chaos.coin(salt::DROP, n) < chaos.drop_p {
        // Close without a byte of response; the client sees a torn
        // connection and retries at the transport layer.
        return;
    }
    if chaos.truncate_p > 0.0 && chaos.coin(salt::TRUNCATE, n) < chaos.truncate_p {
        let rendered = http::render_response(status, body);
        let half = rendered.len() / 2;
        let _ = http::write_raw(stream, &rendered.as_bytes()[..half]);
        return;
    }
    if chaos.corrupt_p > 0.0 && chaos.coin(salt::CORRUPT, n) < chaos.corrupt_p {
        // Framing stays valid; the JSON does not. Exercises the
        // orchestrator's garbled-response strikes rather than its
        // transport retries.
        let garbled = body.replace(['{', '['], "#");
        let _ = http::write_response(stream, status, &garbled);
        return;
    }
    let _ = http::write_response(stream, status, body);
}

fn error_body(message: &str) -> String {
    let mut out = String::new();
    let mut obj = JsonObject::begin(&mut out);
    obj.field_str("error", message);
    obj.finish();
    out
}

fn handshake(shared: &Shared, draining: bool) -> (u16, String) {
    let mut out = String::new();
    let mut obj = JsonObject::begin(&mut out);
    obj.field_u64("wire", u64::from(WIRE_PROTOCOL));
    obj.field_str("digest", &shared.digest);
    obj.field_u64("threads", shared.threads as u64);
    obj.field_bool("draining", draining);
    obj.finish();
    (200, out)
}

fn submit(body: &str, shared: &Shared) -> (u16, String) {
    let value = match json::from_str(body) {
        Ok(value) => value,
        Err(err) => return (400, error_body(&format!("unparseable submit body: {err}"))),
    };
    let Some(digest) = value.get("digest").and_then(|v| v.as_str()) else {
        return (400, error_body("submit body missing string field `digest`"));
    };
    if digest != shared.digest {
        return (
            409,
            error_body(&format!(
                "wire digest mismatch: orchestrator {digest}, worker {} — rebuild both from the same source",
                shared.digest
            )),
        );
    }
    let Some(id) = value.get("job").and_then(json::Value::as_u64) else {
        return (400, error_body("submit body missing integer field `job`"));
    };
    let retries = value
        .get("retries")
        .and_then(json::Value::as_u64)
        .unwrap_or(0) as u32;
    let resumed_from = value
        .get("resumed_from")
        .and_then(|v| v.as_str())
        .map(str::to_owned);
    let Some(experiment_value) = value.get("experiment") else {
        return (
            400,
            error_body("submit body missing object field `experiment`"),
        );
    };
    let experiment = match Experiment::from_wire_json(experiment_value) {
        Ok(experiment) => experiment,
        Err(err) => return (400, error_body(&format!("undecodable experiment: {err}"))),
    };
    let nth_submit = shared.submits.fetch_add(1, Ordering::SeqCst) + 1;
    if shared.chaos.crash_submit == Some(nth_submit) {
        // A poison pill: die hard before responding, exactly like a
        // worker host that panics the kernel mid-accept.
        eprintln!("wormsim-worker: chaos crash on submit #{nth_submit}");
        std::process::exit(CHAOS_CRASH_EXIT);
    }
    let stalled = shared.chaos.stall_submit == Some(nth_submit);
    let point_hash = experiment.point_hash();
    let mut state = shared.state.lock().expect("no poisoned worker state");
    if state.jobs.contains_key(&id) {
        return (400, error_body(&format!("duplicate job id {id}")));
    }
    state.jobs.insert(
        id,
        JobRecord {
            experiment,
            point_hash,
            retries,
            resumed_from,
            cancel: CancelToken::new(),
            phase: if stalled {
                JobPhase::Stalled
            } else {
                JobPhase::Queued
            },
        },
    );
    if stalled {
        // The job is accepted and will be reported pending forever, its
        // heartbeat frozen at zero: a hung worker, as seen from outside.
        eprintln!("wormsim-worker: chaos stall on submit #{nth_submit}");
    } else {
        state.queue.push_back(id);
    }
    drop(state);
    shared.ready.notify_one();
    let mut out = String::new();
    let mut obj = JsonObject::begin(&mut out);
    obj.field_u64("job", id);
    obj.finish();
    (200, out)
}

fn job_status(query: &str, shared: &Shared, draining: bool) -> (u16, String) {
    let Some(id) = query
        .strip_prefix("job=")
        .and_then(|raw| raw.parse::<u64>().ok())
    else {
        return (400, error_body("status query must be ?job=ID"));
    };
    let state = shared.state.lock().expect("no poisoned worker state");
    let Some(record) = state.jobs.get(&id) else {
        return (404, error_body(&format!("unknown job {id}")));
    };
    let mut out = String::new();
    let mut obj = JsonObject::begin(&mut out);
    match &record.phase {
        JobPhase::Queued | JobPhase::Running | JobPhase::Stalled => {
            obj.field_str("state", "pending");
            // The engine's cycle heartbeat: 0 until the simulation
            // starts, then monotonically advancing. A supervisor that
            // sees the same value across its point deadline knows this
            // worker is hung, not slow.
            obj.field_u64("heartbeat", record.cancel.heartbeat());
            obj.field_bool("draining", draining);
        }
        JobPhase::Done(Ok(result), attempts, retry_decision) => {
            obj.field_str("state", "done");
            obj.field_u64("attempts", *attempts);
            if let Some(decision) = retry_decision {
                obj.field_str("retry_decision", decision);
            }
            obj.field_raw("result", &result.to_json());
        }
        JobPhase::Done(Err(err), attempts, _) => {
            obj.field_str("state", "failed");
            obj.field_u64("attempts", *attempts);
            obj.field_str("error", &err.to_string());
        }
    }
    obj.finish();
    (200, out)
}

fn cancel_all(shared: &Shared) -> (u16, String) {
    let state = shared.state.lock().expect("no poisoned worker state");
    let mut cancelled = 0u64;
    for record in state.jobs.values() {
        record.cancel.cancel();
        cancelled += 1;
    }
    drop(state);
    let mut out = String::new();
    let mut obj = JsonObject::begin(&mut out);
    obj.field_u64("cancelled", cancelled);
    obj.finish();
    (200, out)
}

//! The paper's quoted numbers, encoded for side-by-side comparison.

use wormsim::RunResult;

/// One quantitative claim from the paper, with a function extracting the
/// corresponding measurement from a figure's results.
pub struct PaperClaim {
    /// What the paper claims (quote or paraphrase).
    pub what: &'static str,
    /// The paper's number, as printed.
    pub paper_value: &'static str,
    /// Extracts our measurement of the same quantity.
    pub measure: fn(&[RunResult]) -> f64,
}

fn peak(results: &[RunResult], algorithm: &str) -> f64 {
    crate::peak_utilization(results, algorithm)
}

/// The claims attached to each figure id (`fig3`, `fig4`, `fig5`, `vct34`).
pub fn paper_reference(spec_id: &str) -> Vec<PaperClaim> {
    match spec_id {
        "fig3" => vec![
            PaperClaim {
                what: "phop peak normalized throughput (uniform)",
                paper_value: "0.72",
                measure: |r| peak(r, "phop"),
            },
            PaperClaim {
                what: "nbc peak normalized throughput (uniform)",
                paper_value: "0.63",
                measure: |r| peak(r, "nbc"),
            },
            PaperClaim {
                what: "nhop saturates around offered 0.55 (peak util near that)",
                paper_value: "~0.55",
                measure: |r| peak(r, "nhop"),
            },
            PaperClaim {
                what: "e-cube peak throughput",
                paper_value: "0.34",
                measure: |r| peak(r, "ecube"),
            },
            PaperClaim {
                what: "nlast peak throughput (below e-cube)",
                paper_value: "0.25",
                measure: |r| peak(r, "nlast"),
            },
            PaperClaim {
                what: "2pn peak throughput (below e-cube, uniform)",
                paper_value: "<0.34",
                measure: |r| peak(r, "2pn"),
            },
        ],
        "fig4" => vec![
            PaperClaim {
                what: "e-cube peak normalized throughput (hotspot)",
                paper_value: "0.25",
                measure: |r| peak(r, "ecube"),
            },
            PaperClaim {
                what: "phop peak normalized throughput (hotspot)",
                paper_value: ">0.5",
                measure: |r| peak(r, "phop"),
            },
            PaperClaim {
                what: "nbc peak normalized throughput (hotspot)",
                paper_value: ">0.5",
                measure: |r| peak(r, "nbc"),
            },
            PaperClaim {
                what: "nhop peak normalized throughput (hotspot)",
                paper_value: "~0.45",
                measure: |r| peak(r, "nhop"),
            },
        ],
        "fig5" => vec![
            PaperClaim {
                what: "2pn peak throughput (local; beats e-cube here)",
                paper_value: "0.37",
                measure: |r| peak(r, "2pn"),
            },
            PaperClaim {
                what: "e-cube peak throughput (local; below 2pn)",
                paper_value: "<0.37",
                measure: |r| peak(r, "ecube"),
            },
            PaperClaim {
                what: "nlast peak throughput (local; the worst)",
                paper_value: "least",
                measure: |r| peak(r, "nlast"),
            },
        ],
        "vct34" => vec![
            PaperClaim {
                what: "2pn ~ nbc under virtual cut-through (peak util ratio)",
                paper_value: "~1.0",
                measure: |r| peak(r, "2pn") / peak(r, "nbc").max(1e-9),
            },
            PaperClaim {
                what: "2pn beats e-cube under virtual cut-through (ratio > 1)",
                paper_value: ">1.0",
                measure: |r| peak(r, "2pn") / peak(r, "ecube").max(1e-9),
            },
        ],
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_figure_has_claims() {
        for id in ["fig3", "fig4", "fig5", "vct34"] {
            assert!(!paper_reference(id).is_empty(), "{id}");
        }
        assert!(paper_reference("nope").is_empty());
    }
}

//! Criterion benchmarks of the simulator itself: simulated cycles per
//! second for each figure configuration. A regression here makes the
//! figure regenerators slower, so each paper workload gets a bench group.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use wormsim::presets;
use wormsim::{ArrivalProcess, MessageLength, NetworkBuilder, Switching};

fn bench_figure(c: &mut Criterion, id: &str, spec: &presets::FigureSpec) {
    let mut group = c.benchmark_group(format!("engine/{id}"));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for algorithm in &spec.algorithms {
        let topo = presets::paper_topology();
        // Mid-load point of the sweep: representative steady-state work.
        let pattern = spec.traffic.build(&topo).expect("pattern builds");
        let rate = wormsim::stats::throughput::rate_for_utilization(
            0.4,
            16.0,
            pattern.mean_distance(&topo),
            topo.num_dims(),
        );
        group.bench_function(algorithm.name(), |b| {
            b.iter_batched(
                || {
                    let mut net = NetworkBuilder::new(topo.clone(), *algorithm)
                        .traffic(spec.traffic.clone())
                        .switching(spec.switching)
                        .arrival(ArrivalProcess::geometric(rate).expect("valid rate"))
                        .message_length(MessageLength::fixed(16).expect("valid length"))
                        .seed(7)
                        .build()
                        .expect("network builds");
                    net.run(2_000); // reach steady state outside the timing
                    net
                },
                |mut net| {
                    net.run(1_000);
                    net
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn engine_benches(c: &mut Criterion) {
    bench_figure(c, "fig3_uniform", &presets::fig3());
    bench_figure(c, "fig4_hotspot", &presets::fig4());
    bench_figure(c, "fig5_local", &presets::fig5());
    bench_figure(c, "vct34_cut_through", &presets::vct_section_3_4());
}

fn switching_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/switching");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (name, switching) in [
        ("wormhole", Switching::wormhole()),
        ("cut_through", Switching::VirtualCutThrough),
        ("store_and_forward", Switching::StoreAndForward),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let topo = presets::paper_topology();
                    let mut net = NetworkBuilder::new(
                        topo,
                        wormsim::AlgorithmKind::NegativeHopBonusCards,
                    )
                    .switching(switching)
                    .arrival(ArrivalProcess::geometric(0.01).expect("valid rate"))
                    .message_length(MessageLength::fixed(16).expect("valid length"))
                    .seed(7)
                    .build()
                    .expect("network builds");
                    net.run(2_000);
                    net
                },
                |mut net| {
                    net.run(1_000);
                    net
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, engine_benches, switching_benches);
criterion_main!(benches);

//! Timing benches of the simulator itself: simulated cycles per second for
//! each figure configuration. A regression here makes the figure
//! regenerators slower, so each paper workload gets a bench group.
//!
//! Plain `std::time` harness (`harness = false`): run with
//! `cargo bench -p wormsim-bench --bench engine_speed`.

use std::time::Instant;
use wormsim::observe::JsonlSink;
use wormsim::presets;
use wormsim::{ArrivalProcess, MessageLength, NetworkBuilder, Switching};

const WARMUP_CYCLES: u64 = 2_000;
const TIMED_CYCLES: u64 = 5_000;
/// Timed segments per configuration; the median resists the scheduler and
/// frequency-scaling outliers a single sample would swallow.
const SEGMENTS: usize = 5;

/// Median wall time of [`SEGMENTS`] back-to-back `TIMED_CYCLES` runs on an
/// already-warmed network. Consecutive segments are all steady-state samples
/// of the same workload, so their median is a robust per-segment estimate.
fn median_segment_secs(net: &mut wormsim::engine::Network) -> f64 {
    let mut times: Vec<f64> = (0..SEGMENTS)
        .map(|_| {
            let start = Instant::now();
            net.run(TIMED_CYCLES);
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[SEGMENTS / 2]
}

fn bench_figure(id: &str, spec: &presets::FigureSpec) {
    println!("engine/{id}");
    for algorithm in &spec.algorithms {
        let topo = presets::paper_topology();
        // Mid-load point of the sweep: representative steady-state work.
        let pattern = spec.traffic.build(&topo).expect("pattern builds");
        let rate = wormsim::stats::throughput::rate_for_utilization(
            0.4,
            16.0,
            pattern.mean_distance(&topo),
            topo.num_dims(),
        );
        let mut net = NetworkBuilder::new(topo.clone(), *algorithm)
            .traffic(spec.traffic.clone())
            .switching(spec.switching)
            .arrival(ArrivalProcess::geometric(rate).expect("valid rate"))
            .message_length(MessageLength::fixed(16).expect("valid length"))
            .seed(7)
            .build()
            .expect("network builds");
        net.run(WARMUP_CYCLES); // reach steady state outside the timing
        let median = median_segment_secs(&mut net);
        println!(
            "  {:>6}: {:>12.0} cycles/s (median of {} x {} cycles, {:.3} ms/segment)",
            algorithm.name(),
            TIMED_CYCLES as f64 / median,
            SEGMENTS,
            TIMED_CYCLES,
            median * 1e3,
        );
    }
}

fn switching_benches() {
    println!("engine/switching");
    for (name, switching) in [
        ("wormhole", Switching::wormhole()),
        ("cut_through", Switching::VirtualCutThrough),
        ("store_and_forward", Switching::StoreAndForward),
    ] {
        let topo = presets::paper_topology();
        let mut net = NetworkBuilder::new(topo, wormsim::AlgorithmKind::NegativeHopBonusCards)
            .switching(switching)
            .arrival(ArrivalProcess::geometric(0.01).expect("valid rate"))
            .message_length(MessageLength::fixed(16).expect("valid length"))
            .seed(7)
            .build()
            .expect("network builds");
        net.run(WARMUP_CYCLES);
        let median = median_segment_secs(&mut net);
        println!(
            "  {:>18}: {:>12.0} cycles/s",
            name,
            TIMED_CYCLES as f64 / median,
        );
    }
}

/// Overhead of each observability mode relative to a bare run of the same
/// network: the disabled path should be free, and the streaming sinks
/// should stay within a few percent.
fn observability_benches() {
    println!("engine/observability");
    let out_dir = std::env::temp_dir().join(format!("wormsim-bench-{}", std::process::id()));
    std::fs::create_dir_all(&out_dir).expect("temp dir creates");

    let build = || {
        NetworkBuilder::new(
            presets::paper_topology(),
            wormsim::AlgorithmKind::NegativeHopBonusCards,
        )
        .arrival(ArrivalProcess::geometric(0.01).expect("valid rate"))
        .message_length(MessageLength::fixed(16).expect("valid length"))
        .seed(7)
        .build()
        .expect("network builds")
    };
    // Best-of-N fresh networks per mode: the minimum wall time is the least
    // noise-contaminated estimate on a shared machine.
    const REPS: u32 = 3;
    let time_mode = |mode: &str| {
        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let mut net = build();
            match mode {
                "sinks_off" => {}
                "ring_trace" => {
                    net.observer().trace_ring();
                }
                "jsonl_samples" => {
                    let sink =
                        JsonlSink::create(out_dir.join("samples.jsonl")).expect("sink opens");
                    net.observer().sample(1_000, Box::new(sink));
                }
                "jsonl_trace" => {
                    let sink = JsonlSink::create(out_dir.join("trace.jsonl")).expect("sink opens");
                    net.observer().trace_into(Box::new(sink));
                }
                _ => unreachable!(),
            }
            net.run(WARMUP_CYCLES);
            let start = Instant::now();
            net.run(TIMED_CYCLES);
            best = best.min(start.elapsed().as_secs_f64());
        }
        TIMED_CYCLES as f64 / best
    };

    let mut baseline = 0.0;
    for mode in ["sinks_off", "ring_trace", "jsonl_samples", "jsonl_trace"] {
        let rate = time_mode(mode);
        if mode == "sinks_off" {
            baseline = rate;
            println!("  {mode:>14}: {rate:>12.0} cycles/s (baseline)");
        } else {
            let overhead = (baseline / rate - 1.0) * 100.0;
            println!("  {mode:>14}: {rate:>12.0} cycles/s ({overhead:+.1}% vs off)");
        }
    }
    let _ = std::fs::remove_dir_all(&out_dir);
}

fn main() {
    bench_figure("fig3_uniform", &presets::fig3());
    bench_figure("fig4_hotspot", &presets::fig4());
    bench_figure("fig5_local", &presets::fig5());
    bench_figure("vct34_cut_through", &presets::vct_section_3_4());
    switching_benches();
    observability_benches();
}

//! Timing benches of the routing functions in isolation: candidate
//! generation cost per hop, the paper's "routing logic complexity" axis.
//!
//! Plain `std::time` harness (`harness = false`): run with
//! `cargo bench -p wormsim-bench --bench routing_cost`.

use std::hint::black_box;
use std::time::Instant;
use wormsim::routing::{AlgorithmKind, MessageRouteState};
use wormsim::topology::{NodeId, Topology};

fn routing_candidates() {
    let topo = Topology::torus(&[16, 16]);
    println!("routing/candidates");
    for kind in AlgorithmKind::all() {
        let algo = kind.build(&topo).expect("algorithm builds");
        // A representative set of (state, position) pairs.
        let mut cases = Vec::new();
        for (s, d) in [
            ([0u16, 0u16], [5u16, 9u16]),
            ([15, 15], [2, 2]),
            ([7, 3], [8, 3]),
        ] {
            let src = topo.node_at(&s);
            let dest = topo.node_at(&d);
            let mut state = MessageRouteState::new(src, dest);
            algo.init_message(&topo, &mut state);
            cases.push((state, src));
        }
        let mut out = Vec::with_capacity(64);
        let iters = 200_000u64;
        let start = Instant::now();
        for _ in 0..iters {
            for (state, here) in &cases {
                out.clear();
                algo.candidates(&topo, black_box(state), *here, &mut out);
                black_box(&out);
            }
        }
        let per_call = start.elapsed().as_nanos() as f64 / (iters * cases.len() as u64) as f64;
        println!("  {:>6}: {per_call:>8.1} ns/call", kind.name());
    }
}

fn dependency_graph_analysis() {
    let topo = Topology::torus(&[4, 4]);
    println!("routing/cdg_analysis_4x4");
    for kind in [AlgorithmKind::Ecube, AlgorithmKind::NegativeHop] {
        let algo = kind.build(&topo).expect("algorithm builds");
        let iters = 20u32;
        let start = Instant::now();
        for _ in 0..iters {
            let report = wormsim::routing::deadlock::analyze(&topo, algo.as_ref());
            black_box(report.is_acyclic());
        }
        let per_call = start.elapsed().as_secs_f64() * 1e3 / f64::from(iters);
        println!("  {:>6}: {per_call:>8.2} ms/analysis", kind.name());
    }
}

fn distance_queries() {
    let topo = Topology::torus(&[16, 16]);
    let iters = 200u32;
    let start = Instant::now();
    for _ in 0..iters {
        let mut total = 0u64;
        for s in 0..256u32 {
            for d in 0..256u32 {
                total += topo.distance(NodeId::new(s), NodeId::new(d)) as u64;
            }
        }
        black_box(total);
    }
    let per_pair = start.elapsed().as_nanos() as f64 / (u64::from(iters) * 256 * 256) as f64;
    println!("topology/distance_all_pairs: {per_pair:.2} ns/pair");
}

fn main() {
    routing_candidates();
    dependency_graph_analysis();
    distance_queries();
}

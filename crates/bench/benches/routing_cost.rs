//! Criterion benchmarks of the routing functions in isolation: candidate
//! generation cost per hop, the paper's "routing logic complexity" axis.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wormsim::routing::{AlgorithmKind, MessageRouteState};
use wormsim::topology::{NodeId, Topology};

fn routing_candidates(c: &mut Criterion) {
    let topo = Topology::torus(&[16, 16]);
    let mut group = c.benchmark_group("routing/candidates");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for kind in AlgorithmKind::all() {
        let algo = kind.build(&topo).expect("algorithm builds");
        // A representative set of (state, position) pairs.
        let mut cases = Vec::new();
        for (s, d) in [([0u16, 0u16], [5u16, 9u16]), ([15, 15], [2, 2]), ([7, 3], [8, 3])] {
            let src = topo.node_at(&s);
            let dest = topo.node_at(&d);
            let mut state = MessageRouteState::new(src, dest);
            algo.init_message(&topo, &mut state);
            cases.push((state, src));
        }
        group.bench_function(kind.name(), |b| {
            let mut out = Vec::with_capacity(64);
            b.iter(|| {
                for (state, here) in &cases {
                    out.clear();
                    algo.candidates(&topo, black_box(state), *here, &mut out);
                    black_box(&out);
                }
            });
        });
    }
    group.finish();
}

fn dependency_graph_analysis(c: &mut Criterion) {
    let topo = Topology::torus(&[4, 4]);
    let mut group = c.benchmark_group("routing/cdg_analysis_4x4");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    for kind in [AlgorithmKind::Ecube, AlgorithmKind::NegativeHop] {
        let algo = kind.build(&topo).expect("algorithm builds");
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let report = wormsim::routing::deadlock::analyze(&topo, algo.as_ref());
                black_box(report.is_acyclic())
            });
        });
    }
    group.finish();
}

fn distance_queries(c: &mut Criterion) {
    let topo = Topology::torus(&[16, 16]);
    c.bench_function("topology/distance_all_pairs", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for s in 0..256u32 {
                for d in 0..256u32 {
                    total += topo.distance(NodeId::new(s), NodeId::new(d)) as u64;
                }
            }
            black_box(total)
        });
    });
}

criterion_group!(benches, routing_candidates, dependency_graph_analysis, distance_queries);
criterion_main!(benches);

//! End-to-end crash/resume determinism: kill the `sweep` binary partway
//! through (via the test-only `--fail-after-points` crash hook), resume
//! from its journal, and demand the merged CSV is byte-identical to an
//! uninterrupted run with the same seed.

use std::path::{Path, PathBuf};
use std::process::Command;

const SWEEP: &str = env!("CARGO_BIN_EXE_sweep");

/// The shared sweep shape: small torus, two algorithms, three loads,
/// quick schedule, fixed seed — big enough for a mid-sweep crash, small
/// enough to finish in seconds.
fn sweep_args(out_dir: &Path) -> Vec<String> {
    [
        "--topo",
        "torus:6x6",
        "--algos",
        "ecube,phop",
        "--loads",
        "0.1,0.2,0.3",
        "--quick",
        "--seed",
        "1993",
        "--threads",
        "2",
        "--out",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .chain([out_dir.display().to_string()])
    .collect()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wormsim-resume-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn crashed_sweep_resumes_to_byte_identical_csv() {
    // 1. The reference: an uninterrupted sweep.
    let clean_dir = temp_dir("clean");
    let status = Command::new(SWEEP)
        .args(sweep_args(&clean_dir))
        .status()
        .expect("spawn sweep");
    assert!(status.success(), "clean sweep failed: {status}");
    let clean_csv = std::fs::read(clean_dir.join("sweep.csv")).expect("clean CSV written");

    // 2. The crash: the same sweep dies hard after 2 journaled points.
    let crash_dir = temp_dir("crash");
    let status = Command::new(SWEEP)
        .args(sweep_args(&crash_dir))
        .args(["--fail-after-points", "2"])
        .status()
        .expect("spawn sweep");
    assert_eq!(status.code(), Some(3), "crash hook must exit 3: {status}");
    let journal = crash_dir.join("sweep.journal.jsonl");
    let journaled = std::fs::read_to_string(&journal).expect("journal survives the crash");
    assert_eq!(
        journaled.lines().count(),
        2,
        "exactly the points completed before the crash are journaled"
    );
    assert!(
        !crash_dir.join("sweep.csv").exists(),
        "the crash happened before any CSV was written"
    );

    // 3. The resume: skip the journaled points, run the rest.
    let output = Command::new(SWEEP)
        .args(sweep_args(&crash_dir))
        .args(["--resume", &journal.display().to_string()])
        .output()
        .expect("spawn sweep");
    assert!(output.status.success(), "resume failed: {}", output.status);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("resuming: 2/6 points"),
        "resume must report the spliced points; stderr was:\n{stderr}"
    );

    // 4. The contract: the merged CSV is byte-identical to the clean run.
    let resumed_csv = std::fs::read(crash_dir.join("sweep.csv")).expect("resumed CSV written");
    assert_eq!(
        clean_csv, resumed_csv,
        "resumed sweep must reproduce the uninterrupted CSV byte for byte"
    );
    // And the journal now covers the whole sweep.
    let journaled = std::fs::read_to_string(&journal).expect("journal readable");
    assert_eq!(journaled.lines().count(), 6);

    std::fs::remove_dir_all(&clean_dir).ok();
    std::fs::remove_dir_all(&crash_dir).ok();
}

#[test]
fn resume_with_a_complete_journal_runs_nothing_new() {
    let dir = temp_dir("noop");
    let status = Command::new(SWEEP)
        .args(sweep_args(&dir))
        .status()
        .expect("spawn sweep");
    assert!(status.success(), "clean sweep failed: {status}");
    let csv = std::fs::read(dir.join("sweep.csv")).expect("CSV written");
    let journal = dir.join("sweep.journal.jsonl");

    let output = Command::new(SWEEP)
        .args(sweep_args(&dir))
        .args(["--resume", &journal.display().to_string()])
        .output()
        .expect("spawn sweep");
    assert!(
        output.status.success(),
        "no-op resume failed: {}",
        output.status
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("resuming: 6/6 points"),
        "everything should splice from the journal; stderr was:\n{stderr}"
    );
    let rewritten = std::fs::read(dir.join("sweep.csv")).expect("CSV rewritten");
    assert_eq!(csv, rewritten, "a full-journal resume reproduces the CSV");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_from_a_torn_journal_reports_the_recovery_and_still_matches() {
    // A crash mid-append leaves a half-written final line. The resume must
    // say so out loud (so a crashed fleet run is auditable), drop the torn
    // point, re-run it, and still converge to the byte-identical CSV.
    let clean_dir = temp_dir("torn-clean");
    let status = Command::new(SWEEP)
        .args(sweep_args(&clean_dir))
        .status()
        .expect("spawn sweep");
    assert!(status.success(), "clean sweep failed: {status}");
    let clean_csv = std::fs::read(clean_dir.join("sweep.csv")).expect("clean CSV written");

    let torn_dir = temp_dir("torn");
    let status = Command::new(SWEEP)
        .args(sweep_args(&torn_dir))
        .status()
        .expect("spawn sweep");
    assert!(status.success(), "seed sweep failed: {status}");
    let journal = torn_dir.join("sweep.journal.jsonl");
    let mut bytes = std::fs::read(&journal).expect("journal readable");
    let keep = bytes.len() - 17; // chop mid-way through the final record
    bytes.truncate(keep);
    std::fs::write(&journal, bytes).expect("write torn journal");

    let output = Command::new(SWEEP)
        .args(sweep_args(&torn_dir))
        .args(["--resume", &journal.display().to_string()])
        .output()
        .expect("spawn sweep");
    assert!(output.status.success(), "resume failed: {}", output.status);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("resuming: 5/6 points"),
        "the torn point must not splice; stderr was:\n{stderr}"
    );
    assert!(
        stderr.contains("recovered from a torn final append"),
        "the recovery must be reported; stderr was:\n{stderr}"
    );
    let resumed_csv = std::fs::read(torn_dir.join("sweep.csv")).expect("resumed CSV written");
    assert_eq!(clean_csv, resumed_csv, "torn-resume must reproduce the CSV");

    std::fs::remove_dir_all(&clean_dir).ok();
    std::fs::remove_dir_all(&torn_dir).ok();
}

#[test]
fn resume_from_a_missing_journal_is_a_clean_error() {
    let dir = temp_dir("missing");
    let output = Command::new(SWEEP)
        .args(sweep_args(&dir))
        .args(["--resume", "/nonexistent/sweep.journal.jsonl"])
        .output()
        .expect("spawn sweep");
    assert_eq!(output.status.code(), Some(1), "got: {}", output.status);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("journal"),
        "the error must name the journal; stderr was:\n{stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

//! End-to-end sweep supervision under real process-level faults: workers
//! are killed, hung with SIGSTOP, and armed with chaos plans that corrupt
//! their responses mid-sweep — and the merged CSV *and* journal must still
//! come out byte-identical to a serial run. Also drives the supervision
//! CLI flags (`--point-deadline`, `--hedge-after`, `--quarantine-after`)
//! through the `sweep` bin: a hedged straggler leaves a supervision
//! manifest, and a poison point exits with the distinct quarantine code.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

const SWEEP: &str = env!("CARGO_BIN_EXE_sweep");
const WORKER: &str = env!("CARGO_BIN_EXE_wormsim-worker");

/// A worker subprocess that dies with the test, pass or fail.
struct WorkerProc {
    child: Child,
    addr: String,
}

impl WorkerProc {
    /// Starts a worker on an ephemeral loopback port, optionally chaos
    /// armed, and reads the bound address from its announcement line.
    fn spawn(threads: usize, chaos: Option<&str>) -> WorkerProc {
        let mut cmd = Command::new(WORKER);
        cmd.args(["--listen", "127.0.0.1:0", "--threads", &threads.to_string()]);
        if let Some(plan) = chaos {
            cmd.args(["--chaos", plan]);
        }
        let mut child = cmd
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn wormsim-worker");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read announcement");
        let addr = line
            .trim()
            .strip_prefix("wormsim-worker listening on ")
            .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
            .to_owned();
        WorkerProc { child, addr }
    }

    /// Freezes the whole worker process with SIGSTOP — the hung-worker
    /// case: the socket stays open, but nothing answers.
    fn sigstop(&self) {
        let status = Command::new("kill")
            .args(["-STOP", &self.child.id().to_string()])
            .status()
            .expect("send SIGSTOP");
        assert!(status.success(), "SIGSTOP failed: {status}");
    }
}

impl Drop for WorkerProc {
    fn drop(&mut self) {
        // SIGKILL also reaps stopped processes.
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wormsim-superv-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A twelve-point 8×8 sweep: long enough that faults injected 300 ms in
/// genuinely hit in-flight work.
fn long_sweep_args(out_dir: &Path) -> Vec<String> {
    [
        "--topo",
        "torus:8x8",
        "--algos",
        "ecube,phop,nbc",
        "--loads",
        "0.1,0.2,0.3,0.4",
        "--quick",
        "--seed",
        "1993",
        "--threads",
        "2",
        "--out",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .chain([out_dir.display().to_string()])
    .collect()
}

/// A six-point 6×6 sweep for the cheaper CLI-flag scenarios.
fn short_sweep_args(out_dir: &Path) -> Vec<String> {
    [
        "--topo",
        "torus:6x6",
        "--algos",
        "ecube,phop",
        "--loads",
        "0.1,0.2,0.3",
        "--quick",
        "--seed",
        "1993",
        "--threads",
        "2",
        "--out",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .chain([out_dir.display().to_string()])
    .collect()
}

fn run_serial(args: &[String], out_dir: &Path) -> (Vec<u8>, Vec<u8>) {
    let status = Command::new(SWEEP)
        .args(args)
        .status()
        .expect("spawn local sweep");
    assert!(status.success(), "local sweep failed: {status}");
    (
        std::fs::read(out_dir.join("sweep.csv")).expect("local CSV"),
        std::fs::read(out_dir.join("sweep.journal.jsonl")).expect("local journal"),
    )
}

/// The chaos gauntlet: four workers — one clean, one corrupting 20% of
/// its response bodies, one killed 300 ms in, one frozen with SIGSTOP
/// 300 ms in — and the sweep must finish with bytes identical to serial.
#[test]
fn killed_hung_and_corrupting_workers_stay_byte_identical() {
    let local_dir = temp_dir("gauntlet-local");
    let args = long_sweep_args(&local_dir);
    let (local_csv, local_journal) = run_serial(&args, &local_dir);

    let clean = WorkerProc::spawn(2, None);
    let garbler = WorkerProc::spawn(2, Some("corrupt=0.2,delay-ms=10@0.3"));
    let doomed = WorkerProc::spawn(2, None);
    let frozen = WorkerProc::spawn(2, None);
    let remote_dir = temp_dir("gauntlet-remote");
    let sweep = Command::new(SWEEP)
        .args(long_sweep_args(&remote_dir))
        .args(["--backend", "remote"])
        .args(["--worker", &clean.addr])
        .args(["--worker", &garbler.addr])
        .args(["--worker", &doomed.addr])
        .args(["--worker", &frozen.addr])
        // Small RPC timeout so the frozen worker's unanswered polls are
        // declared lost in seconds, not the 10 s production default.
        .env("WORMSIM_RPC_TIMEOUT_MS", "500")
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn remote sweep");
    std::thread::sleep(std::time::Duration::from_millis(300));
    drop(doomed); // kill -9, mid-point
    frozen.sigstop(); // hung, socket still open, mid-point
    let output = sweep.wait_with_output().expect("sweep finishes");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "sweep must survive the gauntlet; stderr was:\n{stderr}"
    );
    assert!(
        stderr.contains("re-dispatching"),
        "losing two workers must be announced; stderr was:\n{stderr}"
    );

    let remote_csv = std::fs::read(remote_dir.join("sweep.csv")).expect("remote CSV");
    let remote_journal =
        std::fs::read(remote_dir.join("sweep.journal.jsonl")).expect("remote journal");
    assert_eq!(
        local_csv, remote_csv,
        "the gauntlet must not perturb a byte of the CSV"
    );
    assert_eq!(
        local_journal, remote_journal,
        "the gauntlet must not perturb a byte of the journal"
    );

    std::fs::remove_dir_all(&local_dir).ok();
    std::fs::remove_dir_all(&remote_dir).ok();
}

/// `--hedge-after` through the CLI: a worker whose first point stalls
/// forever (chaos `stall-submit=1`) is rescued by a hedged re-dispatch,
/// the sweep stays byte-identical, and the supervision manifest records
/// the hedge.
#[test]
fn hedged_straggler_is_rescued_and_recorded() {
    let local_dir = temp_dir("hedge-local");
    let args = short_sweep_args(&local_dir);
    let (local_csv, local_journal) = run_serial(&args, &local_dir);

    let staller = WorkerProc::spawn(2, Some("stall-submit=1"));
    let clean = WorkerProc::spawn(2, None);
    let remote_dir = temp_dir("hedge-remote");
    let status = Command::new(SWEEP)
        .args(short_sweep_args(&remote_dir))
        .args(["--backend", "remote"])
        .args(["--worker", &staller.addr])
        .args(["--worker", &clean.addr])
        .args(["--hedge-after", "0.3"])
        .args(["--quarantine-after", "0"])
        .status()
        .expect("spawn remote sweep");
    assert!(status.success(), "hedged sweep failed: {status}");

    let remote_csv = std::fs::read(remote_dir.join("sweep.csv")).expect("remote CSV");
    let remote_journal =
        std::fs::read(remote_dir.join("sweep.journal.jsonl")).expect("remote journal");
    assert_eq!(local_csv, remote_csv, "hedging must not perturb the CSV");
    assert_eq!(
        local_journal, remote_journal,
        "hedging must not perturb the journal"
    );
    let manifest = std::fs::read_to_string(remote_dir.join("sweep.journal.supervision.json"))
        .expect("supervision manifest");
    assert!(
        manifest.contains("\"points_hedged\""),
        "manifest must record the hedge: {manifest}"
    );

    std::fs::remove_dir_all(&local_dir).ok();
    std::fs::remove_dir_all(&remote_dir).ok();
}

/// `--point-deadline` + `--quarantine-after` through the CLI: a point
/// that hangs every worker it touches is quarantined, the sweep exits
/// with the distinct quarantine code (4), and the poison point lands in
/// the quarantine sidecar instead of the journal.
#[test]
fn poison_point_quarantines_with_distinct_exit_code() {
    let staller_a = WorkerProc::spawn(1, Some("stall-submit=1"));
    let staller_b = WorkerProc::spawn(1, Some("stall-submit=1"));
    let out_dir = temp_dir("quarantine");
    let output = Command::new(SWEEP)
        .args([
            "--topo",
            "torus:6x6",
            "--algos",
            "ecube",
            "--loads",
            "0.1",
            "--quick",
            "--seed",
            "1993",
            "--out",
        ])
        .arg(&out_dir)
        .args(["--backend", "remote"])
        .args(["--worker", &staller_a.addr])
        .args(["--worker", &staller_b.addr])
        .args(["--point-deadline", "0.5"])
        .args(["--quarantine-after", "1"])
        .stderr(Stdio::piped())
        .output()
        .expect("spawn quarantine sweep");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(
        output.status.code(),
        Some(4),
        "quarantine must exit with its own code; stderr was:\n{stderr}"
    );
    assert!(
        stderr.contains("quarantin"),
        "quarantine must be announced; stderr was:\n{stderr}"
    );
    let sidecar = std::fs::read_to_string(out_dir.join("sweep.journal.quarantine.jsonl"))
        .expect("quarantine sidecar");
    assert!(
        sidecar.contains("\"point_hash\""),
        "sidecar must name the poison point: {sidecar}"
    );
    let journal =
        std::fs::read_to_string(out_dir.join("sweep.journal.jsonl")).expect("journal exists");
    assert!(
        journal.is_empty(),
        "the poison point must not reach the journal: {journal}"
    );

    std::fs::remove_dir_all(&out_dir).ok();
}

//! End-to-end distributed determinism: run the same sweep once with the
//! in-process thread pool and once sharded across two loopback
//! `wormsim-worker` processes, and demand the merged CSV *and* the journal
//! are byte-identical. Also covers torn-journal recovery: truncate a
//! journal mid-record, resume, and get the same bytes back.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

const SWEEP: &str = env!("CARGO_BIN_EXE_sweep");
const WORKER: &str = env!("CARGO_BIN_EXE_wormsim-worker");

/// A worker subprocess that dies with the test, pass or fail.
struct WorkerProc {
    child: Child,
    addr: String,
}

impl WorkerProc {
    /// Starts a worker on an ephemeral loopback port and reads the bound
    /// address from its announcement line on stdout.
    fn spawn(threads: usize) -> WorkerProc {
        let mut child = Command::new(WORKER)
            .args(["--listen", "127.0.0.1:0", "--threads", &threads.to_string()])
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn wormsim-worker");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read announcement");
        let addr = line
            .trim()
            .strip_prefix("wormsim-worker listening on ")
            .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
            .to_owned();
        WorkerProc { child, addr }
    }
}

impl Drop for WorkerProc {
    fn drop(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

/// The shared sweep shape — small enough to finish in seconds, big enough
/// (six points) that two workers genuinely interleave.
fn sweep_args(out_dir: &Path) -> Vec<String> {
    [
        "--topo",
        "torus:6x6",
        "--algos",
        "ecube,phop",
        "--loads",
        "0.1,0.2,0.3",
        "--quick",
        "--seed",
        "1993",
        "--threads",
        "2",
        "--out",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .chain([out_dir.display().to_string()])
    .collect()
}

/// A longer sweep (twelve 8×8 points) for the crash test: it must still
/// be running when the doomed worker is killed 300 ms in, so the failover
/// path genuinely re-dispatches in-flight work.
fn failover_sweep_args(out_dir: &Path) -> Vec<String> {
    [
        "--topo",
        "torus:8x8",
        "--algos",
        "ecube,phop,nbc",
        "--loads",
        "0.1,0.2,0.3,0.4",
        "--quick",
        "--seed",
        "1993",
        "--threads",
        "2",
        "--out",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .chain([out_dir.display().to_string()])
    .collect()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wormsim-dist-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn remote_sweep_is_byte_identical_to_local() {
    // 1. The reference: the ordinary in-process sweep.
    let local_dir = temp_dir("local");
    let status = Command::new(SWEEP)
        .args(sweep_args(&local_dir))
        .status()
        .expect("spawn local sweep");
    assert!(status.success(), "local sweep failed: {status}");
    let local_csv = std::fs::read(local_dir.join("sweep.csv")).expect("local CSV");
    let local_journal =
        std::fs::read(local_dir.join("sweep.journal.jsonl")).expect("local journal");

    // 2. The same sweep sharded across two concurrent loopback workers.
    let workers = [WorkerProc::spawn(2), WorkerProc::spawn(2)];
    let remote_dir = temp_dir("remote");
    let status = Command::new(SWEEP)
        .args(sweep_args(&remote_dir))
        .args(["--backend", "remote"])
        .args(["--worker", &workers[0].addr])
        .args(["--worker", &workers[1].addr])
        .status()
        .expect("spawn remote sweep");
    assert!(status.success(), "remote sweep failed: {status}");

    // 3. The contract: identical bytes, CSV and journal both.
    let remote_csv = std::fs::read(remote_dir.join("sweep.csv")).expect("remote CSV");
    let remote_journal =
        std::fs::read(remote_dir.join("sweep.journal.jsonl")).expect("remote journal");
    assert_eq!(
        local_csv, remote_csv,
        "remote sweep must reproduce the local CSV byte for byte"
    );
    assert_eq!(
        local_journal, remote_journal,
        "remote sweep must reproduce the local journal byte for byte"
    );

    std::fs::remove_dir_all(&local_dir).ok();
    std::fs::remove_dir_all(&remote_dir).ok();
}

#[test]
fn worker_crash_mid_sweep_fails_over_and_stays_byte_identical() {
    // 1. The reference: the ordinary in-process sweep.
    let local_dir = temp_dir("failover-local");
    let status = Command::new(SWEEP)
        .args(failover_sweep_args(&local_dir))
        .status()
        .expect("spawn local sweep");
    assert!(status.success(), "local sweep failed: {status}");
    let local_csv = std::fs::read(local_dir.join("sweep.csv")).expect("local CSV");
    let local_journal =
        std::fs::read(local_dir.join("sweep.journal.jsonl")).expect("local journal");

    // 2. The same sweep across two workers — and one of them is murdered
    //    shortly after the sweep starts, with points in flight. The
    //    backend must write it off, re-dispatch its points to the
    //    survivor, and finish.
    let doomed = WorkerProc::spawn(1);
    let survivor = WorkerProc::spawn(2);
    let remote_dir = temp_dir("failover-remote");
    let sweep = Command::new(SWEEP)
        .args(failover_sweep_args(&remote_dir))
        .args(["--backend", "remote"])
        .args(["--worker", &doomed.addr])
        .args(["--worker", &survivor.addr])
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn remote sweep");
    std::thread::sleep(std::time::Duration::from_millis(300));
    drop(doomed); // kill -9, mid-point
    let output = sweep.wait_with_output().expect("sweep finishes");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "sweep must survive a worker crash; stderr was:\n{stderr}"
    );
    assert!(
        stderr.contains("re-dispatching"),
        "the failover must be announced; stderr was:\n{stderr}"
    );

    // 3. The contract holds across the crash: identical bytes.
    let remote_csv = std::fs::read(remote_dir.join("sweep.csv")).expect("remote CSV");
    let remote_journal =
        std::fs::read(remote_dir.join("sweep.journal.jsonl")).expect("remote journal");
    assert_eq!(
        local_csv, remote_csv,
        "failover must reproduce the local CSV byte for byte"
    );
    assert_eq!(
        local_journal, remote_journal,
        "failover must reproduce the local journal byte for byte"
    );

    std::fs::remove_dir_all(&local_dir).ok();
    std::fs::remove_dir_all(&remote_dir).ok();
}

#[test]
fn remote_sweep_without_reachable_workers_is_a_clean_error() {
    let dir = temp_dir("deadworker");
    let output = Command::new(SWEEP)
        .args(sweep_args(&dir))
        .args(["--backend", "remote", "--worker", "127.0.0.1:1"])
        .output()
        .expect("spawn sweep");
    assert_eq!(output.status.code(), Some(1), "got: {}", output.status);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("worker 127.0.0.1:1"),
        "the error must name the unreachable worker; stderr was:\n{stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_journal_recovers_and_resumes_to_identical_csv() {
    // 1. A complete sweep: CSV plus a six-line journal.
    let dir = temp_dir("torn");
    let status = Command::new(SWEEP)
        .args(sweep_args(&dir))
        .status()
        .expect("spawn sweep");
    assert!(status.success(), "clean sweep failed: {status}");
    let clean_csv = std::fs::read(dir.join("sweep.csv")).expect("CSV written");
    let journal = dir.join("sweep.journal.jsonl");
    let text = std::fs::read_to_string(&journal).expect("journal readable");
    assert_eq!(text.lines().count(), 6);

    // 2. Tear the final record in half, as a crash mid-append would.
    let keep = text.len() - text.lines().last().unwrap().len() / 2;
    std::fs::write(&journal, &text[..keep]).expect("truncate journal");

    // 3. Resume: the valid prefix splices, the torn point re-runs.
    let output = Command::new(SWEEP)
        .args(sweep_args(&dir))
        .args(["--resume", &journal.display().to_string()])
        .output()
        .expect("spawn sweep");
    assert!(output.status.success(), "resume failed: {}", output.status);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("torn append"),
        "recovery must be announced; stderr was:\n{stderr}"
    );
    assert!(
        stderr.contains("resuming: 5/6 points"),
        "five valid points must splice; stderr was:\n{stderr}"
    );

    // 4. Identical CSV, and a journal healed back to six parseable lines.
    let resumed_csv = std::fs::read(dir.join("sweep.csv")).expect("resumed CSV");
    assert_eq!(
        clean_csv, resumed_csv,
        "recovery resume must reproduce the CSV byte for byte"
    );
    let healed = std::fs::read_to_string(&journal).expect("journal readable");
    assert_eq!(
        healed, text,
        "the healed journal must match the uninterrupted one byte for byte"
    );

    std::fs::remove_dir_all(&dir).ok();
}

//! The [`Network`]: a synchronous flit-level simulator.

use crate::config::{EjectionModel, SelectionPolicy, SimConfig, Switching};
use crate::flit::{Flit, MessageId};
use crate::message::{MessageRec, MessageSlab};
use crate::metrics::{DeliveredMessage, Metrics};
use crate::observer::ObserverHandle;
use crate::vc::{InputVc, RouteTarget};
use crate::{EngineError, TraceEvent};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap, HashSet, VecDeque};
use wormsim_faults::Reachability;
use wormsim_observe::{
    EventSink, MetricsRegistry, RingSink, Sample, WaitForEdge, WaitForSnapshot, WaitKind,
    PHASE_ADVANCE, PHASE_ALLOCATE, PHASE_DRAIN, PHASE_INJECT, PHASE_ROUTE,
};
use wormsim_routing::{Adaptivity, Candidate, MessageRouteState, RoutingAlgorithm};
use wormsim_topology::{ChannelMask, Direction, NodeId, Topology};
use wormsim_traffic::{SimRng, TrafficPattern};

/// Capacity of the bounded trace ring installed by
/// [`observer().trace_ring()`](ObserverHandle::trace_ring): generous for
/// short diagnostic runs, small enough that a saturated multi-hour run
/// cannot exhaust memory. When the ring is full the oldest event is
/// evicted and counted in [`Network::dropped_trace_events`]; size the ring
/// explicitly with
/// [`trace_ring_with_capacity`](ObserverHandle::trace_ring_with_capacity),
/// or stream everything with [`trace_into`](ObserverHandle::trace_into).
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// Where trace events go: nowhere, a bounded ring, or a caller-supplied
/// sink (typically a JSONL stream).
enum TraceSink {
    Off,
    Ring(RingSink<TraceEvent>),
    Custom(Box<dyn EventSink<TraceEvent>>),
}

/// Windowed counter baselines for the sampler. The sampler reports *deltas*
/// over each window; because [`Network::reset_metrics`] can zero the
/// metrics mid-window, deltas accumulated before a reset are folded into
/// `carry` so no flits are lost from the sample stream.
#[derive(Clone, Debug, Default)]
struct WindowBase {
    generated: u64,
    refused: u64,
    delivered: u64,
    flit_hops: u64,
    flits_injected: u64,
    flits_ejected: u64,
    class_flits: Vec<u64>,
    channel_flits: Vec<u64>,
}

impl WindowBase {
    fn zeros(classes: usize, channels: usize) -> Self {
        WindowBase {
            class_flits: vec![0; classes],
            channel_flits: vec![0; channels],
            ..WindowBase::default()
        }
    }

    fn clear(&mut self) {
        self.generated = 0;
        self.refused = 0;
        self.delivered = 0;
        self.flit_hops = 0;
        self.flits_injected = 0;
        self.flits_ejected = 0;
        self.class_flits.fill(0);
        self.channel_flits.fill(0);
    }

    fn copy_from(&mut self, metrics: &Metrics) {
        self.generated = metrics.generated;
        self.refused = metrics.refused;
        self.delivered = metrics.delivered;
        self.flit_hops = metrics.flit_hops;
        self.flits_injected = metrics.flits_injected;
        self.flits_ejected = metrics.flits_ejected;
        self.class_flits.copy_from_slice(&metrics.class_flits);
        if let Some(channels) = metrics.channel_flits.as_deref() {
            self.channel_flits.copy_from_slice(channels);
        }
    }

    /// Folds `metrics - base` into `self` (used as the carry accumulator).
    fn add_delta(&mut self, metrics: &Metrics, base: &WindowBase) {
        self.generated += metrics.generated.saturating_sub(base.generated);
        self.refused += metrics.refused.saturating_sub(base.refused);
        self.delivered += metrics.delivered.saturating_sub(base.delivered);
        self.flit_hops += metrics.flit_hops.saturating_sub(base.flit_hops);
        self.flits_injected += metrics.flits_injected.saturating_sub(base.flits_injected);
        self.flits_ejected += metrics.flits_ejected.saturating_sub(base.flits_ejected);
        for (acc, (&cur, &b)) in self
            .class_flits
            .iter_mut()
            .zip(metrics.class_flits.iter().zip(base.class_flits.iter()))
        {
            *acc += cur.saturating_sub(b);
        }
        if let Some(channels) = metrics.channel_flits.as_deref() {
            for (acc, (&cur, &b)) in self
                .channel_flits
                .iter_mut()
                .zip(channels.iter().zip(base.channel_flits.iter()))
            {
                *acc += cur.saturating_sub(b);
            }
        }
    }
}

/// The periodic time-series sampler (see [`Network::enable_sampling`]).
struct SamplerState {
    /// Cycles between samples.
    every: u64,
    /// Destination for emitted [`Sample`] records.
    sink: Box<dyn EventSink<Sample>>,
    /// Cycle of the last emission (start of the current window).
    last_cycle: u64,
    /// Sum of latencies of messages delivered in the current window.
    latency_sum: u64,
    /// Deltas folded in across metric resets within the window.
    carry: WindowBase,
    /// Metrics values at the start of the window (or last reset).
    base: WindowBase,
}

/// Reported when the watchdog observes no flit movement for the configured
/// number of cycles while flits are in flight.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeadlockReport {
    /// The cycle at which the watchdog fired.
    pub detected_at: u64,
    /// The last cycle with any flit movement.
    pub last_progress: u64,
    /// Flits stuck in the network (including source-queued flits).
    pub flits_in_flight: u64,
    /// Messages alive at detection time.
    pub live_messages: usize,
}

/// Reported when the livelock/starvation guard finds live messages over
/// the configured hop or age budget. Advisory at the engine level: the
/// simulation keeps running (higher layers decide whether to stop).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LivelockReport {
    /// The cycle the guard first found an over-budget message.
    pub detected_at: u64,
    /// Live messages over either budget at detection time.
    pub messages_over_budget: usize,
    /// Largest hop count among the offenders.
    pub max_hops: u32,
    /// Largest age in cycles among the offenders.
    pub max_age: u64,
}

/// Cycles between livelock-guard scans of the live-message slab. The scan
/// is O(live messages), so it is strided rather than per-cycle; budgets are
/// therefore enforced with up to this much slack.
const LIVELOCK_CHECK_STRIDE: u64 = 256;

/// Runtime fault machinery; present only when the configuration carries a
/// non-empty [`FaultPlan`](wormsim_faults::FaultPlan).
struct FaultState {
    /// Sorted cycles at which the mask changes (from
    /// [`FaultPlan::transition_cycles`](wormsim_faults::FaultPlan::transition_cycles)).
    transitions: Vec<u64>,
    /// Index of the next unapplied entry in `transitions`.
    next_transition: usize,
    /// The mask currently in effect.
    mask: ChannelMask,
    /// All-pairs reachability under `mask`.
    reach: Reachability,
    /// Messages held at their source because no live path to their
    /// destination exists, in ascending id order. They re-enter the source
    /// queue if a repair restores reachability.
    parked: Vec<MessageId>,
    /// Flits belonging to parked messages (excluded from the watchdog's
    /// notion of "in flight").
    parked_flits: u64,
}

/// Per-node simulation state.
#[derive(Debug, Default)]
struct NodeState {
    /// Messages accepted but not yet assigned to an injection VC.
    queue: VecDeque<MessageId>,
    /// Congestion-control occupancy per message class.
    class_counts: HashMap<u32, u32>,
    /// Injection VCs currently streaming a message (VC indices).
    streaming_inj: Vec<u16>,
    /// Round-robin pointer over `streaming_inj` for the injection budget.
    inj_rr: usize,
    /// Round-robin pointer for single-channel ejection.
    ej_rr: usize,
}

/// A decided link transfer: input VC `ivc` sends one flit over the output
/// channel of `node` in packed direction `dir`, on physical VC `vc`.
#[derive(Clone, Copy, Debug)]
struct LinkMove {
    ivc: u32,
    node: u32,
    dir: u8,
    vc: u16,
}

/// Decoded `(node, port, vc)` of an input VC index, precomputed so hot
/// paths avoid the divisions of [`Network::ivc_parts`].
#[derive(Clone, Copy, Debug)]
struct IvcMeta {
    node: u32,
    vc: u16,
    port: u8,
}

/// A routed input VC waiting on an output channel. Everything the
/// switch-allocation inner loop needs is precomputed at routing time so
/// arbitration touches only this entry, the occupancy shadow, and the
/// output VC's credits. Kept at 8 bytes (the output-VC index is derived
/// from the channel's row base plus `vc`, not stored) so a channel's whole
/// request row fits in one or two cache lines on large networks.
#[derive(Clone, Copy, Debug, Default)]
struct OutputRequest {
    ivc: u32,
    vc: u16,
    from_injection: bool,
}

/// A fixed-size bitmap worklist. Iterating set bits visits indices in
/// ascending order — for free, every cycle — which is what keeps the
/// event-driven phases bit-identical to the full scans they replace.
///
/// A second-level `summary` bitmap (one bit per word) lets the phase loops
/// skip empty words without touching them, so a quiet cycle costs
/// O(active + words/64) rather than O(words): at 4096 nodes the injection
/// scan drops from 64 word loads to one summary load.
#[derive(Clone, Debug)]
struct BitSet {
    words: Vec<u64>,
    /// Bit `w` set ⟺ `words[w] != 0`. Maintained by [`BitSet::insert`] and
    /// [`BitSet::set_word`].
    summary: Vec<u64>,
}

impl BitSet {
    fn new(len: usize) -> Self {
        let words = len.div_ceil(64);
        BitSet {
            words: vec![0; words],
            summary: vec![0; words.div_ceil(64)],
        }
    }

    #[inline]
    fn insert(&mut self, index: usize) {
        let w = index / 64;
        self.words[w] |= 1u64 << (index % 64);
        self.summary[w / 64] |= 1u64 << (w % 64);
    }

    /// Replaces word `w`, keeping the summary invariant. The phase loops
    /// call this after draining a word so cleared words fall out of future
    /// summary scans.
    #[inline]
    fn set_word(&mut self, w: usize, value: u64) {
        self.words[w] = value;
        if value == 0 {
            self.summary[w / 64] &= !(1u64 << (w % 64));
        } else {
            self.summary[w / 64] |= 1u64 << (w % 64);
        }
    }
}

/// The assembled network simulator.
///
/// See the [crate docs](crate) for the cycle structure and an example.
pub struct Network {
    cfg: SimConfig,
    topo: Topology,
    algo: Box<dyn RoutingAlgorithm>,
    pattern: Box<dyn TrafficPattern>,
    /// Routing VC classes per physical channel.
    classes: usize,
    /// Physical VCs per class.
    replicas: usize,
    /// Physical VCs per channel (`classes * replicas`).
    vcs: usize,
    /// Outgoing directions per node (`2n`).
    dirs: usize,
    /// Input ports per node (`2n` links + 1 injection).
    ports: usize,
    /// Per-VC input buffer capacity in flits.
    capacity: u32,

    input_vcs: Vec<InputVc>,
    /// Reservation per output VC: the message currently holding it.
    out_owner: Vec<Option<MessageId>>,
    /// Credits per output VC (free slots in the paired downstream input
    /// buffer). Kept as a bare array — separate from `out_owner` — so the
    /// switch-allocation credit checks stay in a compact, cache-friendly
    /// range.
    out_credits: Vec<u32>,
    /// Input VCs currently routed to each output channel, as a flat
    /// channel-major matrix with `vcs` slots per channel (a requester holds
    /// one of the channel's `vcs` output-VC reservations, so a row can
    /// never overflow). Row occupancy lives in `request_len`. Fixed storage
    /// — no per-channel `Vec`s to reallocate or chase through.
    requests: Vec<OutputRequest>,
    /// Number of live entries in each channel's request row. `u8` is
    /// enough: a row holds at most `vcs` entries and assembly rejects
    /// configurations with more than 255 VCs per channel.
    request_len: Vec<u8>,
    /// Round-robin pointer per output channel. Bounded by `vcs`, so it
    /// shares `request_len`'s `u8` range.
    out_rr: Vec<u8>,
    /// Input VCs whose front head still needs a route.
    pending_route: Vec<u32>,
    /// Input VCs currently delivering to the local node.
    ejecting: Vec<u32>,
    /// Pending traffic arrivals as `Reverse((cycle, node))`: a min-heap so
    /// phase 1 only visits nodes that actually fire. Ties on the cycle pop
    /// in ascending node order, which preserves the RNG consumption order
    /// of the full per-node scan this replaces.
    arrival_heap: BinaryHeap<Reverse<(u64, u32)>>,
    /// Nodes with a non-empty source queue (worklist for phase 2).
    /// Invariant: a node's queue is non-empty ⟹ its bit is set; bits of
    /// drained nodes are cleared as the phase visits them.
    inj_dirty: BitSet,
    /// Output channels with at least one routed input VC (worklist for
    /// phase 4). Invariant: `requests[ch]` non-empty ⟹ bit set; channels
    /// whose request list drained are dropped lazily at the next
    /// switch-allocation pass.
    active_channels: BitSet,
    /// Nodes with at least one streaming injection VC (worklist for the
    /// injection budget). Invariant: `streaming_inj` non-empty ⟹ bit set;
    /// drained nodes are dropped lazily.
    active_inj_nodes: BitSet,
    /// Reused `(node, ivc)` buffer for single-channel ejection grouping.
    scratch_eject: Vec<(u32, u32)>,
    /// Decoded `(node, port, vc)` per input VC index.
    ivc_meta: Vec<IvcMeta>,
    /// Neighbor node per output channel (`u32::MAX` at mesh boundaries).
    neighbor_of: Vec<u32>,
    /// Owning `(node, dir)` per output channel index.
    ch_owner: Vec<(u32, u8)>,
    /// Routing class per physical VC (`vc / replicas`).
    vc_class: Vec<u8>,
    /// Buffer occupancy per input VC: a compact shadow of
    /// `input_vcs[i].buffer.len()` so the switch-allocation and
    /// injection-budget inner loops stay inside a few cache lines instead
    /// of chasing into the full [`InputVc`] structs.
    occ: Vec<u32>,
    nodes: Vec<NodeState>,
    slab: MessageSlab,

    metrics: Metrics,
    delivered: Vec<DeliveredMessage>,
    cycle: u64,
    flits_in_flight: u64,
    last_progress: u64,
    deadlock: Option<DeadlockReport>,
    faults: Option<FaultState>,
    livelock: Option<LivelockReport>,

    arrivals_rng: SimRng,
    dest_rng: SimRng,
    length_rng: SimRng,
    arb_rng: SimRng,

    scratch_candidates: Vec<Candidate>,
    scratch_moves: Vec<LinkMove>,
    marked_inj: Vec<bool>,
    marked_list: Vec<u32>,
    events: TraceSink,
    sampler: Option<SamplerState>,
    /// Deep-telemetry instruments (per-channel/per-class counters, latency
    /// histogram, phase profiler); `None` costs one branch per event site.
    registry: Option<Box<MetricsRegistry>>,
    /// Cooperative cancellation: checked on a stride by [`run`](Self::run)
    /// and [`run_until_empty`](Self::run_until_empty). `None` costs nothing.
    cancel: Option<crate::CancelToken>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("topology", &self.topo.to_string())
            .field("algorithm", &self.algo.name())
            .field("cycle", &self.cycle)
            .field("flits_in_flight", &self.flits_in_flight)
            .field("live_messages", &self.slab.live())
            .finish_non_exhaustive()
    }
}

impl Network {
    /// Assembles a network from a configuration.
    ///
    /// # Errors
    ///
    /// Returns an [`EngineError`] for invalid parameters, or if the routing
    /// algorithm / traffic pattern rejects the topology.
    pub fn new(cfg: SimConfig) -> Result<Self, EngineError> {
        let topo = cfg.topology.clone();
        let algo = cfg.algorithm.build(&topo)?;
        let pattern = cfg.traffic.build(&topo)?;
        Self::with_parts(cfg, algo, pattern)
    }

    /// Assembles a network with a *custom* routing algorithm and/or traffic
    /// pattern, bypassing the built-in registries. The `algorithm` and
    /// `traffic` fields of `cfg` are ignored in favor of the given parts.
    ///
    /// This is the extension point for experimenting with routing
    /// algorithms beyond the paper's six: implement
    /// [`RoutingAlgorithm`](wormsim_routing::RoutingAlgorithm) and hand it
    /// in (see the repository's `custom_algorithm` example).
    ///
    /// # Errors
    ///
    /// Returns an [`EngineError`] for invalid parameters.
    pub fn with_parts(
        cfg: SimConfig,
        algo: Box<dyn RoutingAlgorithm>,
        pattern: Box<dyn TrafficPattern>,
    ) -> Result<Self, EngineError> {
        cfg.validate()?;
        let topo = cfg.topology.clone();
        let faults = cfg.faults.as_ref().filter(|p| !p.is_empty()).map(|plan| {
            let mask = plan.mask_at(&topo, 0);
            let reach = Reachability::compute(&topo, &mask);
            FaultState {
                transitions: plan.transition_cycles(),
                next_transition: 0,
                mask,
                reach,
                parked: Vec::new(),
                parked_flits: 0,
            }
        });
        let classes = algo.num_vc_classes();
        let replicas = cfg.vc_replicas as usize;
        let vcs = classes * replicas;
        // Per-channel bookkeeping (`request_len`, `out_rr`) is `u8`; the
        // paper's deepest class ladder (phop on a 64×64 torus: 65 classes)
        // stays far inside the range, but reject the pathological
        // combinations rather than wrapping.
        if vcs > u8::MAX as usize {
            return Err(EngineError::TooManyVcs { vcs });
        }
        let dirs = topo.num_dims() * 2;
        let ports = dirs + 1;
        let n = topo.num_nodes() as usize;
        let capacity = cfg.buffer_capacity();

        let ivc_meta = (0..n * ports * vcs)
            .map(|i| {
                let vc = (i % vcs) as u16;
                let rest = i / vcs;
                IvcMeta {
                    node: (rest / ports) as u32,
                    vc,
                    port: (rest % ports) as u8,
                }
            })
            .collect();
        let neighbor_of = (0..n * dirs)
            .map(|ch| {
                let node = NodeId::new((ch / dirs) as u32);
                let dir = Direction::from_index(ch % dirs);
                topo.neighbor(node, dir).map_or(u32::MAX, |nb| nb.index())
            })
            .collect();
        let vc_class = (0..vcs).map(|vc| (vc / replicas) as u8).collect();
        let ch_owner = (0..n * dirs)
            .map(|ch| ((ch / dirs) as u32, (ch % dirs) as u8))
            .collect();

        let mut net = Network {
            input_vcs: (0..n * ports * vcs).map(|_| InputVc::default()).collect(),
            out_owner: vec![None; n * dirs * vcs],
            out_credits: vec![capacity; n * dirs * vcs],
            requests: vec![OutputRequest::default(); n * dirs * vcs],
            request_len: vec![0; n * dirs],
            out_rr: vec![0; n * dirs],
            pending_route: Vec::new(),
            ejecting: Vec::new(),
            arrival_heap: BinaryHeap::with_capacity(n),
            inj_dirty: BitSet::new(n),
            active_channels: BitSet::new(n * dirs),
            active_inj_nodes: BitSet::new(n),
            scratch_eject: Vec::new(),
            ivc_meta,
            neighbor_of,
            ch_owner,
            vc_class,
            occ: vec![0; n * ports * vcs],
            nodes: (0..n).map(|_| NodeState::default()).collect(),
            slab: MessageSlab::default(),
            metrics: Metrics::new(classes, cfg.track_channel_load, n * dirs),
            delivered: Vec::new(),
            cycle: 0,
            flits_in_flight: 0,
            last_progress: 0,
            deadlock: None,
            faults,
            livelock: None,
            arrivals_rng: SimRng::stream(cfg.seed, 0),
            dest_rng: SimRng::stream(cfg.seed, 1),
            length_rng: SimRng::stream(cfg.seed, 2),
            arb_rng: SimRng::stream(cfg.seed, 3),
            scratch_candidates: Vec::with_capacity(64),
            scratch_moves: Vec::with_capacity(n * dirs),
            marked_inj: vec![false; n * ports * vcs],
            marked_list: Vec::new(),
            events: TraceSink::Off,
            sampler: None,
            registry: None,
            cancel: None,
            classes,
            replicas,
            vcs,
            dirs,
            ports,
            capacity,
            topo,
            algo,
            pattern,
            cfg,
        };
        net.schedule_initial_arrivals();
        Ok(net)
    }

    // ------------------------------------------------------------------
    // Indexing helpers.
    // ------------------------------------------------------------------

    #[inline]
    fn ivc_index(&self, node: u32, port: usize, vc: usize) -> u32 {
        ((node as usize * self.ports + port) * self.vcs + vc) as u32
    }

    #[inline]
    fn ivc_parts(&self, ivc: u32) -> (u32, usize, usize) {
        let meta = self.ivc_meta[ivc as usize];
        (meta.node, meta.port as usize, meta.vc as usize)
    }

    #[inline]
    fn ovc_index(&self, node: u32, dir: usize, vc: usize) -> usize {
        (node as usize * self.dirs + dir) * self.vcs + vc
    }

    #[inline]
    fn channel_index(&self, node: u32, dir: usize) -> usize {
        node as usize * self.dirs + dir
    }

    #[inline]
    fn injection_port(&self) -> usize {
        self.dirs
    }

    // ------------------------------------------------------------------
    // Public accessors.
    // ------------------------------------------------------------------

    /// The current cycle (completed steps).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Virtual-channel classes per physical channel (set by the algorithm).
    pub fn num_vc_classes(&self) -> usize {
        self.classes
    }

    /// Physical virtual channels per channel
    /// (`num_vc_classes × vc_replicas`).
    pub fn num_physical_vcs(&self) -> usize {
        self.vcs
    }

    /// The configuration this network was built from.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The topology under simulation.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The routing algorithm in use.
    pub fn algorithm(&self) -> &dyn RoutingAlgorithm {
        self.algo.as_ref()
    }

    /// The traffic pattern in use.
    pub fn traffic_pattern(&self) -> &dyn TrafficPattern {
        self.pattern.as_ref()
    }

    /// Aggregate counters since the last [`reset_metrics`](Self::reset_metrics).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Zeroes the aggregate counters (network state is untouched). Used at
    /// sampling-period boundaries. The time-series sampler, if enabled,
    /// keeps its window deltas intact across the reset.
    pub fn reset_metrics(&mut self) {
        if let Some(sampler) = self.sampler.as_mut() {
            sampler.carry.add_delta(&self.metrics, &sampler.base);
            sampler.base.clear();
        }
        self.metrics.reset();
    }

    /// Takes the per-message delivery records accumulated so far.
    pub fn drain_delivered(&mut self) -> Vec<DeliveredMessage> {
        std::mem::take(&mut self.delivered)
    }

    /// Appends the accumulated delivery records to `out` and clears the
    /// internal buffer. Allocation-free variant of
    /// [`drain_delivered`](Self::drain_delivered) for drive loops that poll
    /// every sampling period.
    pub fn drain_delivered_into(&mut self, out: &mut Vec<DeliveredMessage>) {
        out.append(&mut self.delivered);
    }

    /// Flits currently inside the network or its source queues.
    pub fn flits_in_flight(&self) -> u64 {
        self.flits_in_flight
    }

    /// Messages currently alive (queued, streaming, or in transit).
    pub fn live_messages(&self) -> usize {
        self.slab.live()
    }

    /// Number of physical network channels (the denominator of channel
    /// utilization); mesh boundary slots are excluded.
    pub fn num_network_channels(&self) -> u64 {
        self.topo.num_physical_links() as u64
    }

    /// The watchdog's verdict, if it has fired.
    pub fn deadlock_report(&self) -> Option<DeadlockReport> {
        self.deadlock
    }

    /// The livelock/starvation guard's verdict, if it has fired. Requires a
    /// [`hop_budget`](NetworkBuilder::hop_budget) or
    /// [`age_budget`](NetworkBuilder::age_budget) to be set; checked every
    /// few hundred cycles and sticky once set.
    pub fn livelock_report(&self) -> Option<LivelockReport> {
        self.livelock
    }

    /// Flits in flight excluding those of parked messages (messages held
    /// at their source because a fault cut every path to their
    /// destination). This is what the deadlock watchdog counts as
    /// outstanding work, so parked messages cannot trip it.
    pub fn active_flits(&self) -> u64 {
        self.flits_in_flight - self.faults.as_ref().map_or(0, |fs| fs.parked_flits)
    }

    /// Messages currently parked at their source because no live path to
    /// their destination exists under the active fault mask.
    pub fn parked_messages(&self) -> usize {
        self.faults.as_ref().map_or(0, |fs| fs.parked.len())
    }

    /// The fault mask currently in effect (`None` when the run carries no
    /// fault plan).
    pub fn fault_mask(&self) -> Option<&ChannelMask> {
        self.faults.as_ref().map(|fs| &fs.mask)
    }

    /// Ordered source/destination pairs (distinct endpoints) currently
    /// routable over live channels. Equals `n·(n-1)` on a healthy network.
    pub fn routable_pairs(&self) -> u64 {
        match &self.faults {
            Some(fs) => fs.reach.routable_pairs(),
            None => {
                let n = u64::from(self.topo.num_nodes());
                n * (n - 1)
            }
        }
    }

    /// The unified observability entry point: a builder-style
    /// [`ObserverHandle`] over this network's tracing and sampling state.
    /// See [`TraceEvent`] for the trace vocabulary.
    ///
    /// ```
    /// # use wormsim_engine::{NetworkBuilder};
    /// # use wormsim_topology::Topology;
    /// # use wormsim_routing::AlgorithmKind;
    /// # let mut net = NetworkBuilder::new(Topology::torus(&[4, 4]), AlgorithmKind::Ecube)
    /// #     .build().unwrap();
    /// net.observer().trace_ring_with_capacity(256);
    /// net.run(100);
    /// let events = net.drain_trace();
    /// # let _ = events;
    /// ```
    pub fn observer(&mut self) -> ObserverHandle<'_> {
        ObserverHandle::new(self)
    }

    /// Tracing into the default bounded ring; keeps an installed ring.
    pub(crate) fn observe_trace_ring(&mut self) {
        if !matches!(self.events, TraceSink::Ring(_)) {
            self.events = TraceSink::Ring(RingSink::new(DEFAULT_TRACE_CAPACITY));
        }
    }

    /// Tracing into a ring of `capacity` events (clamped to at least 1).
    pub(crate) fn observe_trace_ring_with_capacity(&mut self, capacity: usize) {
        self.events = TraceSink::Ring(RingSink::new(capacity));
    }

    /// Tracing into a caller-supplied sink, replacing any installed ring.
    pub(crate) fn observe_set_event_sink(&mut self, sink: Box<dyn EventSink<TraceEvent>>) {
        self.events = TraceSink::Custom(sink);
    }

    /// Removes a custom sink (tracing off); `None` when off or ring-backed.
    pub(crate) fn observe_take_event_sink(&mut self) -> Option<Box<dyn EventSink<TraceEvent>>> {
        match std::mem::replace(&mut self.events, TraceSink::Off) {
            TraceSink::Custom(sink) => Some(sink),
            other => {
                self.events = other;
                None
            }
        }
    }

    /// Tracing off; buffered events are discarded.
    pub(crate) fn observe_disable_tracing(&mut self) {
        self.events = TraceSink::Off;
    }

    /// Takes the buffered trace events, oldest first (empty if tracing is
    /// off or routed to a custom sink).
    pub fn drain_trace(&mut self) -> Vec<TraceEvent> {
        match &mut self.events {
            TraceSink::Ring(ring) => ring.drain(),
            _ => Vec::new(),
        }
    }

    /// Trace events discarded so far: ring evictions, or whatever the
    /// custom sink reports (failed writes for a JSONL sink).
    pub fn dropped_trace_events(&self) -> u64 {
        match &self.events {
            TraceSink::Off => 0,
            TraceSink::Ring(ring) => ring.dropped_events(),
            TraceSink::Custom(sink) => sink.dropped_events(),
        }
    }

    #[inline]
    fn trace(&mut self, event: TraceEvent) {
        match &mut self.events {
            TraceSink::Off => {}
            TraceSink::Ring(ring) => ring.record(&event),
            TraceSink::Custom(sink) => sink.record(&event),
        }
    }

    /// Starts emitting one [`Sample`] into `sink` every `every` cycles
    /// (clamped to at least 1), replacing any previous sampler. Each sample
    /// carries the counter deltas for its window plus an instantaneous
    /// snapshot of queue depths and VC occupancy; windows survive
    /// [`reset_metrics`](Self::reset_metrics) unharmed.
    pub(crate) fn observe_enable_sampling(&mut self, every: u64, sink: Box<dyn EventSink<Sample>>) {
        let channels = self.metrics.channel_flits.as_ref().map_or(0, Vec::len);
        let mut base = WindowBase::zeros(self.classes, channels);
        base.copy_from(&self.metrics);
        self.sampler = Some(SamplerState {
            every: every.max(1),
            sink,
            last_cycle: self.cycle,
            latency_sum: 0,
            carry: WindowBase::zeros(self.classes, channels),
            base,
        });
    }

    /// Stops sampling, returning the sink (so callers can flush it or read
    /// its drop counter). `None` if sampling was off.
    pub(crate) fn observe_disable_sampling(&mut self) -> Option<Box<dyn EventSink<Sample>>> {
        self.sampler.take().map(|sampler| sampler.sink)
    }

    /// Installs a fresh [`MetricsRegistry`] sized for this network. An
    /// already installed registry (and its counts) is kept.
    pub(crate) fn observe_enable_metrics(&mut self) {
        if self.registry.is_none() {
            let channels = self.nodes.len() * self.dirs;
            self.registry = Some(Box::new(MetricsRegistry::new(channels, self.classes)));
        }
    }

    /// Uninstalls and returns the registry; `None` if metrics were off.
    pub(crate) fn observe_disable_metrics(&mut self) -> Option<Box<MetricsRegistry>> {
        self.registry.take()
    }

    /// The installed deep-telemetry registry, if metrics are enabled via
    /// [`observer().metrics_on()`](ObserverHandle::metrics_on).
    pub fn metrics_registry(&self) -> Option<&MetricsRegistry> {
        self.registry.as_deref()
    }

    /// Emits the current (possibly partial) sampling window immediately —
    /// useful at the end of a run so the tail of the time series is not
    /// lost. No-op when sampling is off or the window is empty.
    pub fn sample_now(&mut self) {
        if self
            .sampler
            .as_ref()
            .is_some_and(|s| self.cycle > s.last_cycle)
        {
            self.emit_sample();
        }
    }

    /// Sample records discarded by the sampler's sink so far.
    pub fn dropped_sample_events(&self) -> u64 {
        self.sampler
            .as_ref()
            .map_or(0, |sampler| sampler.sink.dropped_events())
    }

    /// Total events dropped across the trace and sample paths.
    pub fn observer_dropped_events(&self) -> u64 {
        self.dropped_trace_events() + self.dropped_sample_events()
    }

    /// Flushes any buffered observer output (JSONL sinks). Reports the
    /// first I/O error but attempts every sink.
    ///
    /// # Errors
    ///
    /// Propagates the first flush failure.
    pub fn flush_observers(&mut self) -> std::io::Result<()> {
        let mut result = Ok(());
        if let TraceSink::Custom(sink) = &mut self.events {
            result = result.and(sink.flush());
        }
        if let Some(sampler) = self.sampler.as_mut() {
            result = result.and(sampler.sink.flush());
        }
        result
    }

    /// Builds and emits one sample for the window `(last_cycle, cycle]`.
    fn emit_sample(&mut self) {
        let Some(mut sampler) = self.sampler.take() else {
            return;
        };
        let mut class_occupancy = vec![0u64; self.classes];
        for (i, slot) in self.input_vcs.iter().enumerate() {
            if !slot.buffer.is_empty() {
                let vc = i % self.vcs;
                class_occupancy[vc / self.replicas] += slot.buffer.len() as u64;
            }
        }
        let mut queued_messages = 0u64;
        let mut max_queue_depth = 0u64;
        for node in &self.nodes {
            let depth = node.queue.len() as u64;
            queued_messages += depth;
            max_queue_depth = max_queue_depth.max(depth);
        }
        let windowed = |cur: u64, base: u64, carry: u64| carry + cur.saturating_sub(base);
        let class_flits = (0..self.classes)
            .map(|c| {
                windowed(
                    self.metrics.class_flits[c],
                    sampler.base.class_flits[c],
                    sampler.carry.class_flits[c],
                )
            })
            .collect();
        let channel_flits = match self.metrics.channel_flits.as_deref() {
            Some(current) => current
                .iter()
                .enumerate()
                .map(|(i, &cur)| {
                    windowed(
                        cur,
                        sampler.base.channel_flits[i],
                        sampler.carry.channel_flits[i],
                    )
                })
                .collect(),
            None => Vec::new(),
        };
        let sample = Sample {
            cycle: self.cycle,
            window_cycles: self.cycle - sampler.last_cycle,
            generated: windowed(
                self.metrics.generated,
                sampler.base.generated,
                sampler.carry.generated,
            ),
            refused: windowed(
                self.metrics.refused,
                sampler.base.refused,
                sampler.carry.refused,
            ),
            delivered: windowed(
                self.metrics.delivered,
                sampler.base.delivered,
                sampler.carry.delivered,
            ),
            latency_sum: sampler.latency_sum,
            flit_hops: windowed(
                self.metrics.flit_hops,
                sampler.base.flit_hops,
                sampler.carry.flit_hops,
            ),
            flits_injected: windowed(
                self.metrics.flits_injected,
                sampler.base.flits_injected,
                sampler.carry.flits_injected,
            ),
            flits_ejected: windowed(
                self.metrics.flits_ejected,
                sampler.base.flits_ejected,
                sampler.carry.flits_ejected,
            ),
            flits_in_flight: self.flits_in_flight,
            live_messages: self.slab.live() as u64,
            queued_messages,
            max_queue_depth,
            class_occupancy,
            class_flits,
            channel_flits,
        };
        sampler.sink.record(&sample);
        sampler.last_cycle = self.cycle;
        sampler.latency_sum = 0;
        sampler.base.copy_from(&self.metrics);
        sampler.carry.clear();
        self.sampler = Some(sampler);
    }

    /// Stops the traffic process: no further arrivals will be scheduled.
    /// Messages already queued or in flight continue normally, so
    /// [`run_until_empty`](Self::run_until_empty) can drain the network at
    /// the end of a run even under an open arrival process.
    pub fn stop_arrivals(&mut self) {
        self.arrival_heap.clear();
    }

    /// Re-seeds the arrival/destination/length/arbitration streams for a
    /// new sampling phase, as the paper does between samples.
    pub fn reseed_streams(&mut self, phase: u64) {
        let base = 4 * (phase + 1);
        self.arrivals_rng = SimRng::stream(self.cfg.seed, base);
        self.dest_rng = SimRng::stream(self.cfg.seed, base + 1);
        self.length_rng = SimRng::stream(self.cfg.seed, base + 2);
        self.arb_rng = SimRng::stream(self.cfg.seed, base + 3);
    }

    // ------------------------------------------------------------------
    // Driving the simulation.
    // ------------------------------------------------------------------

    /// Installs a cooperative cancellation token: [`run`](Self::run) and
    /// [`run_until_empty`](Self::run_until_empty) check it every 1024
    /// cycles and return early once it trips. The check reads a shared
    /// flag and never mutates simulation state, so an uncancelled run is
    /// bit-identical with or without a token installed.
    pub fn set_cancel_token(&mut self, token: crate::CancelToken) {
        self.cancel = Some(token);
    }

    /// Whether an installed cancellation token has tripped.
    pub fn is_cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(crate::CancelToken::is_cancelled)
    }

    /// Publishes the current cycle through the installed token's heartbeat
    /// (a no-op without a token). Called on the same stride as the
    /// cancellation check; reads simulation state, never writes it.
    fn beat(&self) {
        if let Some(token) = &self.cancel {
            token.beat(self.cycle);
        }
    }

    /// Runs `cycles` simulation steps, stopping early if an installed
    /// [`CancelToken`](crate::CancelToken) trips (checked on a stride, so
    /// at most a stride's worth of extra cycles run after cancellation).
    pub fn run(&mut self, cycles: u64) {
        for n in 0..cycles {
            if n % crate::cancel::CANCEL_CHECK_STRIDE == 0 {
                self.beat();
                if self.is_cancelled() {
                    break;
                }
            }
            self.step();
        }
    }

    /// Runs until no flits remain in flight, or `max_cycles` steps elapse.
    /// Returns `true` if the network drained. Parked messages count as
    /// outstanding work — they are waiting on a scheduled repair, and this
    /// keeps stepping through it — but only *active* flits can trip the
    /// deadlock watchdog, so a network that is idle except for parked
    /// messages runs quietly until they unpark (or `max_cycles` is spent,
    /// returning `false` under a permanent partition).
    ///
    /// This is the drain path of an observed run's shutdown sequence, so it
    /// honors an installed [`CancelToken`](crate::CancelToken) the same way
    /// [`run`](Self::run) does: a SIGINT mid-drain returns promptly instead
    /// of simulating the full drain budget.
    pub fn run_until_empty(&mut self, max_cycles: u64) -> bool {
        for n in 0..max_cycles {
            if self.flits_in_flight == 0 {
                return true;
            }
            if n % crate::cancel::CANCEL_CHECK_STRIDE == 0 {
                self.beat();
                if self.is_cancelled() {
                    break;
                }
            }
            self.step();
        }
        self.flits_in_flight == 0
    }

    /// Queues a message directly, bypassing the arrival process (but still
    /// occupying a congestion-control slot until its tail leaves the
    /// source). Intended for tests and custom drivers.
    ///
    /// # Panics
    ///
    /// Panics if `src == dest`, if `length` is zero, or if `length` exceeds
    /// the per-VC buffer capacity under cut-through or store-and-forward
    /// switching (those modes size buffers for the configured maximum
    /// message length, and an oversized message could never be stored).
    pub fn inject(&mut self, src: NodeId, dest: NodeId, length: u32) -> MessageId {
        assert!(src != dest, "messages must leave their source");
        assert!(length > 0, "messages have at least one flit");
        if !matches!(self.cfg.switching, Switching::Wormhole { .. }) {
            assert!(
                length <= self.capacity,
                "message of {length} flits exceeds the {}-flit buffers this \
                 cut-through/store-and-forward network was configured for",
                self.capacity
            );
        }
        self.admit(src, dest, length)
    }

    /// Executes one simulation cycle.
    pub fn step(&mut self) {
        if self.faults.is_some() {
            self.apply_fault_transitions();
        }
        // Phase profiling piggybacks on the registry: `lap` is `None` on
        // the disabled path, so each checkpoint is one untaken branch.
        let mut lap = self.registry.is_some().then(std::time::Instant::now);
        self.phase_arrivals();
        self.phase_assign_injection();
        self.prof_lap(&mut lap, PHASE_INJECT);
        self.phase_route();
        self.prof_lap(&mut lap, PHASE_ROUTE);
        self.phase_switch_allocation();
        self.prof_lap(&mut lap, PHASE_ALLOCATE);
        let mut progressed = self.execute_ejections();
        self.prof_lap(&mut lap, PHASE_DRAIN);
        progressed |= self.execute_link_moves();
        self.prof_lap(&mut lap, PHASE_ADVANCE);
        if progressed {
            self.last_progress = self.cycle;
        } else if self.active_flits() > 0
            && self.deadlock.is_none()
            && self.cycle - self.last_progress >= self.cfg.watchdog_cycles
        {
            self.deadlock = Some(DeadlockReport {
                detected_at: self.cycle,
                last_progress: self.last_progress,
                flits_in_flight: self.flits_in_flight,
                live_messages: self.slab.live(),
            });
        }
        if (self.cfg.hop_budget.is_some() || self.cfg.age_budget.is_some())
            && self.livelock.is_none()
            && self.cycle.is_multiple_of(LIVELOCK_CHECK_STRIDE)
        {
            self.check_livelock();
        }
        self.metrics.cycles += 1;
        if let Some(reg) = self.registry.as_deref_mut() {
            reg.cycles += 1;
        }
        self.cycle += 1;
        if let Some(sampler) = self.sampler.as_ref() {
            if self.cycle - sampler.last_cycle >= sampler.every {
                self.emit_sample();
            }
        }
    }

    /// Closes one profiled phase: charges the time since the previous
    /// checkpoint to `phase` and restarts the stopwatch. No-op (`lap` is
    /// `None`) when metrics are disabled.
    #[inline]
    fn prof_lap(&mut self, lap: &mut Option<std::time::Instant>, phase: usize) {
        if let Some(start) = lap {
            let now = std::time::Instant::now();
            if let Some(reg) = self.registry.as_deref_mut() {
                reg.phase_nanos[phase] += now.duration_since(*start).as_nanos() as u64;
            }
            *lap = Some(now);
        }
    }

    // ------------------------------------------------------------------
    // Phase 1: traffic arrivals.
    // ------------------------------------------------------------------

    fn schedule_initial_arrivals(&mut self) {
        for node in 0..self.nodes.len() as u32 {
            if let Some(gap) = self.cfg.arrival.next_gap(&mut self.arrivals_rng) {
                self.arrival_heap.push(Reverse((gap - 1, node)));
            }
        }
    }

    fn phase_arrivals(&mut self) {
        // Arrival gaps are ≥ 1, so every entry still queued is due at the
        // current cycle or later; equal-cycle entries pop in ascending node
        // order, matching the scan this replaces.
        while let Some(&Reverse((when, node))) = self.arrival_heap.peek() {
            debug_assert!(when >= self.cycle, "arrivals are drained every cycle");
            if when != self.cycle {
                break;
            }
            self.arrival_heap.pop();
            if let Some(gap) = self.cfg.arrival.next_gap(&mut self.arrivals_rng) {
                self.arrival_heap.push(Reverse((self.cycle + gap, node)));
            }
            let src = NodeId::new(node);
            let dest = self.pattern.sample_dest(src, &mut self.dest_rng);
            let length = self.cfg.length.sample(&mut self.length_rng);
            // Faulted network: drop a would-be message whose source is dead
            // or whose destination is unreachable over live channels. The
            // destination and length are sampled first regardless, so the
            // RNG streams stay aligned with a healthy run.
            if let Some(fs) = &self.faults {
                if !fs.reach.routable(src, dest) {
                    self.metrics.unroutable += 1;
                    continue;
                }
            }
            // Congestion control: refuse if the class is at its limit.
            if let Some(limit) = self.cfg.congestion_limit {
                let mut route = MessageRouteState::new(src, dest);
                self.algo.init_message(&self.topo, &mut route);
                let class = self.algo.injection_class(&self.topo, &route);
                let count = self.nodes[node as usize]
                    .class_counts
                    .get(&class)
                    .copied()
                    .unwrap_or(0);
                if count >= limit {
                    self.metrics.refused += 1;
                    self.trace(TraceEvent::Refused {
                        cycle: self.cycle,
                        src,
                        class,
                    });
                    continue;
                }
            }
            self.admit(src, dest, length);
        }
    }

    fn admit(&mut self, src: NodeId, dest: NodeId, length: u32) -> MessageId {
        let mut route = MessageRouteState::new(src, dest);
        self.algo.init_message(&self.topo, &mut route);
        let injection_class = self.algo.injection_class(&self.topo, &route);
        let id = self.slab.insert(MessageRec {
            route,
            length,
            generated: self.cycle,
            injected: None,
            injection_class,
            src,
        });
        let node = &mut self.nodes[src.as_usize()];
        *node.class_counts.entry(injection_class).or_insert(0) += 1;
        node.queue.push_back(id);
        self.inj_dirty.insert(src.as_usize());
        self.metrics.generated += 1;
        self.flits_in_flight += length as u64;
        self.trace(TraceEvent::Generated {
            cycle: self.cycle,
            msg: id,
            src,
            dest,
            length,
        });
        id
    }

    // ------------------------------------------------------------------
    // Phase 2: move queued messages into free injection VCs.
    // ------------------------------------------------------------------

    fn phase_assign_injection(&mut self) {
        // Set bits are visited in ascending node order, matching the full
        // scan this replaces (the order fixes routing priority downstream
        // via `pending_route`). Nodes still blocked on a free VC keep
        // their bit.
        let inj_port = self.injection_port();
        for sw in 0..self.inj_dirty.summary.len() {
            let mut swords = self.inj_dirty.summary[sw];
            while swords != 0 {
                let w = sw * 64 + swords.trailing_zeros() as usize;
                swords &= swords - 1;
                let mut bits = self.inj_dirty.words[w];
                debug_assert_ne!(bits, 0, "summary bit implies a non-empty word");
                let mut keep = bits;
                while bits != 0 {
                    let bit = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let node = (w * 64 + bit) as u32;
                    while !self.nodes[node as usize].queue.is_empty() {
                        // Find a free injection VC (empty buffer, no route).
                        let Some(vc) = (0..self.vcs).find(|&vc| {
                            let ivc = self.ivc_index(node, inj_port, vc);
                            let slot = &self.input_vcs[ivc as usize];
                            slot.buffer.is_empty() && slot.route.is_none()
                        }) else {
                            break;
                        };
                        let id = self.nodes[node as usize]
                            .queue
                            .pop_front()
                            .expect("non-empty");
                        let length = self.slab.get(id).length;
                        let ivc = self.ivc_index(node, inj_port, vc);
                        for flit in Flit::sequence(id, length) {
                            self.input_vcs[ivc as usize].push(flit);
                        }
                        self.occ[ivc as usize] += length;
                        self.trace(TraceEvent::InjectionStarted {
                            cycle: self.cycle,
                            msg: id,
                        });
                        self.enqueue_pending(ivc);
                    }
                    if self.nodes[node as usize].queue.is_empty() {
                        keep &= !(1u64 << bit);
                    }
                }
                self.inj_dirty.set_word(w, keep);
            }
        }
    }

    fn enqueue_pending(&mut self, ivc: u32) {
        self.pending_route.push(ivc);
    }

    // ------------------------------------------------------------------
    // Phase 3: routing and VC allocation for head flits.
    // ------------------------------------------------------------------

    fn phase_route(&mut self) {
        // In-place compaction: `try_route` never pushes to `pending_route`
        // (failures stay, in order), so no take-and-reallocate is needed.
        let mut kept = 0;
        for i in 0..self.pending_route.len() {
            let ivc = self.pending_route[i];
            if !self.try_route(ivc) {
                self.pending_route[kept] = ivc;
                kept += 1;
            }
        }
        self.pending_route.truncate(kept);
    }

    fn try_route(&mut self, ivc: u32) -> bool {
        let (node, _port, _vc) = self.ivc_parts(ivc);
        let slot = &self.input_vcs[ivc as usize];
        let front = slot.front().expect("pending input VC holds its head");
        debug_assert!(front.kind.is_head(), "pending front must be a head flit");
        debug_assert!(slot.route.is_none());
        let msg = front.msg;
        let rec_route = self.slab.get(msg).route;
        let here = NodeId::new(node);

        if rec_route.dest() == here {
            let slot = &mut self.input_vcs[ivc as usize];
            slot.route = Some(RouteTarget::Eject);
            slot.route_msg = Some(msg);
            self.ejecting.push(ivc);
            return true;
        }
        // Store-and-forward: only route once the whole message is here.
        if matches!(self.cfg.switching, Switching::StoreAndForward)
            && !self.input_vcs[ivc as usize].front_message_complete()
        {
            return false;
        }

        let mut candidates = std::mem::take(&mut self.scratch_candidates);
        candidates.clear();
        let fault_mode = self.faults.is_some();
        if fault_mode && rec_route.hops_taken() > self.topo.diameter() {
            // Mis-routed past any minimal path: the algorithm's class
            // bookkeeping may have run off the end of its range, so route
            // greedily over live channels instead of consulting it.
            self.fault_candidates(here, rec_route.dest(), _port, &mut candidates);
        } else {
            self.algo
                .candidates(&self.topo, &rec_route, here, &mut candidates);
            // Under faults the set may legitimately come back empty (2pn
            // off its tag after a mis-route) or shrink to empty once dead
            // channels are removed.
            debug_assert!(
                fault_mode || !candidates.is_empty(),
                "routing must always offer a hop"
            );
            if let Some(fs) = &self.faults {
                if !fs.mask.is_trivial() {
                    candidates.retain(|c| {
                        fs.mask
                            .channel_alive(self.topo.channel(here, c.direction()))
                    });
                }
                if candidates.is_empty()
                    && self.cfg.misroute_on_fault
                    && self.algo.adaptivity() != Adaptivity::NonAdaptive
                {
                    self.fault_candidates(here, rec_route.dest(), _port, &mut candidates);
                }
            }
        }
        if fault_mode {
            // Mis-routing can push an algorithm's class counters (phop's
            // hop count, nhop's negative hops) past the provisioned range;
            // clamp to the top class rather than indexing out of bounds.
            let max_class = (self.classes - 1) as u8;
            for cand in candidates.iter_mut() {
                if cand.vc_class() > max_class {
                    *cand = Candidate::new(cand.direction(), max_class);
                }
            }
            if candidates.is_empty() {
                self.scratch_candidates = candidates;
                return false;
            }
        }

        // Gather the free physical VCs permitted by the candidate set.
        let mut best: Option<(usize, u8, u16, u32)> = None; // (ovc, dir, vc, credits)
        let mut free_seen = 0u32;
        for cand in &candidates {
            let dir = cand.direction().index();
            let base = cand.vc_class() as usize * self.replicas;
            for r in 0..self.replicas {
                let vc = base + r;
                let ovc = self.ovc_index(node, dir, vc);
                if self.out_owner[ovc].is_some() {
                    continue;
                }
                let credits = self.out_credits[ovc];
                free_seen += 1;
                let take = match self.cfg.selection {
                    SelectionPolicy::FirstFree => best.is_none(),
                    SelectionPolicy::MostCredits => best.is_none_or(|(_, _, _, c)| credits > c),
                    SelectionPolicy::Random => {
                        // Reservoir sampling over the free set.
                        self.arb_rng.uniform_below(free_seen) == 0
                    }
                };
                if take {
                    best = Some((ovc, dir as u8, vc as u16, credits));
                }
            }
        }
        self.scratch_candidates = candidates;

        let Some((ovc, dir, vc, _)) = best else {
            // Candidates existed but every admissible VC was taken: a VC
            // allocation failure, charged to each candidate channel.
            if self.registry.is_some() {
                self.record_alloc_failures(node);
            }
            return false;
        };
        self.out_owner[ovc] = Some(msg);
        {
            let slot = &mut self.input_vcs[ivc as usize];
            slot.route = Some(RouteTarget::Link { dir, vc });
            slot.route_msg = Some(msg);
        }
        let ch = self.channel_index(node, dir as usize);
        let (_, port, in_vc) = self.ivc_parts(ivc);
        let from_injection = port == self.injection_port();
        let len = self.request_len[ch] as usize;
        debug_assert!(len < self.vcs, "a channel has at most `vcs` requesters");
        self.requests[ch * self.vcs + len] = OutputRequest {
            ivc,
            vc,
            from_injection,
        };
        self.request_len[ch] = (len + 1) as u8;
        self.active_channels.insert(ch);
        // An injection VC becomes a "streaming" lane once its head has a
        // route, making it eligible for the per-node injection budget.
        if from_injection {
            let state = &mut self.nodes[node as usize];
            if !state.streaming_inj.contains(&(in_vc as u16)) {
                state.streaming_inj.push(in_vc as u16);
            }
            self.active_inj_nodes.insert(node as usize);
        }
        true
    }

    /// Charges one allocation failure per candidate channel of a head that
    /// found every admissible VC taken (`scratch_candidates` still holds
    /// the failed set). Cold path: only runs with metrics on, only on
    /// failed routes.
    fn record_alloc_failures(&mut self, node: u32) {
        let candidates = std::mem::take(&mut self.scratch_candidates);
        if let Some(reg) = self.registry.as_deref_mut() {
            for cand in &candidates {
                let ch = node as usize * self.dirs + cand.direction().index();
                reg.record_alloc_failure(ch, cand.vc_class() as usize);
            }
        }
        self.scratch_candidates = candidates;
    }

    // ------------------------------------------------------------------
    // Phase 4: switch allocation (one flit per output channel per cycle).
    // ------------------------------------------------------------------

    fn phase_switch_allocation(&mut self) {
        self.scratch_moves.clear();
        self.mark_injection_budget();
        // Moved out of `self` so the blocked-requester accounting below
        // can run inside the arbitration loop without a split borrow; one
        // `Option` move per cycle, `None` on the disabled path.
        let mut registry = self.registry.take();
        // Set bits are visited in ascending channel order — node-major,
        // direction-minor — matching the nested full scan this replaces,
        // so round-robin state and `scratch_moves` order are bit-identical.
        // Channels whose request list has drained are dropped here (lazy
        // removal).
        for sw in 0..self.active_channels.summary.len() {
            let mut swords = self.active_channels.summary[sw];
            while swords != 0 {
                let w = sw * 64 + swords.trailing_zeros() as usize;
                swords &= swords - 1;
                let mut bits = self.active_channels.words[w];
                debug_assert_ne!(bits, 0, "summary bit implies a non-empty word");
                let mut keep = bits;
                while bits != 0 {
                    let bit = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let ch = w * 64 + bit;
                    let len = self.request_len[ch] as usize;
                    if len == 0 {
                        keep &= !(1u64 << bit);
                        continue;
                    }
                    let (node, dir) = self.ch_owner[ch];
                    let row = ch * self.vcs;
                    // Round-robin with lazy wrap: `out_rr` is only reduced
                    // modulo `len` when the list shrank underneath it, so
                    // the common path runs division-free.
                    let mut idx = self.out_rr[ch] as usize;
                    if idx >= len {
                        idx %= len;
                    }
                    let mut winner: Option<u32> = None;
                    for _ in 0..len {
                        let req = self.requests[row + idx];
                        // The output-VC index is the channel's row base
                        // plus the granted VC (not stored in the request).
                        let granted = self.occ[req.ivc as usize] != 0
                            && (!req.from_injection || self.marked_inj[req.ivc as usize])
                            && self.out_credits[row + req.vc as usize] != 0;
                        idx += 1;
                        if idx == len {
                            idx = 0;
                        }
                        if granted {
                            debug_assert_eq!(
                                self.input_vcs[req.ivc as usize].route,
                                Some(RouteTarget::Link { dir, vc: req.vc })
                            );
                            self.scratch_moves.push(LinkMove {
                                ivc: req.ivc,
                                node,
                                dir,
                                vc: req.vc,
                            });
                            self.out_rr[ch] = idx as u8;
                            winner = Some(req.ivc);
                            break;
                        }
                    }
                    if let Some(reg) = registry.as_deref_mut() {
                        // Every ungranted requester with a flit ready is a
                        // blocked worm-cycle on this channel.
                        for r in 0..len {
                            let req = self.requests[row + r];
                            if winner != Some(req.ivc) && self.occ[req.ivc as usize] != 0 {
                                reg.record_blocked(ch, self.vc_class[req.vc as usize] as usize);
                            }
                        }
                    }
                }
                self.active_channels.set_word(w, keep);
            }
        }
        self.registry = registry;
    }

    /// Marks up to `injection_bandwidth` streaming injection VCs per node
    /// as allowed to send this cycle (the processor-router port is a
    /// physical channel too).
    fn mark_injection_budget(&mut self) {
        for &ivc in &self.marked_list {
            self.marked_inj[ivc as usize] = false;
        }
        self.marked_list.clear();
        // Only nodes with streaming injection VCs are visited; the budget
        // touches per-node state only, so any visit order would do — the
        // bitmap's ascending order is simply free. Drained nodes are
        // dropped lazily.
        let inj_port = self.injection_port();
        let budget = self.cfg.injection_bandwidth as usize;
        for sw in 0..self.active_inj_nodes.summary.len() {
            let mut swords = self.active_inj_nodes.summary[sw];
            while swords != 0 {
                let w = sw * 64 + swords.trailing_zeros() as usize;
                swords &= swords - 1;
                let mut bits = self.active_inj_nodes.words[w];
                debug_assert_ne!(bits, 0, "summary bit implies a non-empty word");
                let mut keep = bits;
                while bits != 0 {
                    let bit = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let node = (w * 64 + bit) as u32;
                    let len = self.nodes[node as usize].streaming_inj.len();
                    if len == 0 {
                        keep &= !(1u64 << bit);
                        continue;
                    }
                    let mut idx = self.nodes[node as usize].inj_rr;
                    if idx >= len {
                        idx %= len;
                    }
                    let mut next = idx;
                    let mut marked = 0;
                    for _ in 0..len {
                        if marked >= budget {
                            break;
                        }
                        let vc = self.nodes[node as usize].streaming_inj[idx];
                        idx += 1;
                        if idx == len {
                            idx = 0;
                        }
                        let ivc = self.ivc_index(node, inj_port, vc as usize);
                        if self.occ[ivc as usize] != 0 {
                            self.marked_inj[ivc as usize] = true;
                            self.marked_list.push(ivc);
                            marked += 1;
                            next = idx;
                        }
                    }
                    self.nodes[node as usize].inj_rr = next;
                }
                self.active_inj_nodes.set_word(w, keep);
            }
        }
    }

    // ------------------------------------------------------------------
    // Phase 5: execute ejections and link transfers.
    // ------------------------------------------------------------------

    fn execute_ejections(&mut self) -> bool {
        if self.ejecting.is_empty() {
            return false;
        }
        let mut progressed = false;
        match self.cfg.ejection {
            EjectionModel::PerVc => {
                for i in 0..self.ejecting.len() {
                    let ivc = self.ejecting[i];
                    let slot = &self.input_vcs[ivc as usize];
                    if slot.route == Some(RouteTarget::Eject) && !slot.buffer.is_empty() {
                        self.eject_one(ivc);
                        progressed = true;
                    }
                }
            }
            EjectionModel::SingleChannel => {
                // One delivery per node per cycle, round-robin among the
                // node's ejecting VCs. Grouping is a stable sort by node —
                // not a hash map — so delivery order is deterministic; the
                // stable sort keeps each node's VCs in `ejecting` order,
                // which the round-robin pointer indexes into.
                let mut ready = std::mem::take(&mut self.scratch_eject);
                ready.clear();
                for i in 0..self.ejecting.len() {
                    let ivc = self.ejecting[i];
                    let slot = &self.input_vcs[ivc as usize];
                    if slot.route == Some(RouteTarget::Eject) && !slot.buffer.is_empty() {
                        let (node, _, _) = self.ivc_parts(ivc);
                        ready.push((node, ivc));
                    }
                }
                ready.sort_by_key(|&(node, _)| node);
                let mut i = 0;
                while i < ready.len() {
                    let node = ready[i].0;
                    let mut j = i + 1;
                    while j < ready.len() && ready[j].0 == node {
                        j += 1;
                    }
                    let rr = self.nodes[node as usize].ej_rr;
                    let ivc = ready[i + rr % (j - i)].1;
                    self.nodes[node as usize].ej_rr = rr.wrapping_add(1);
                    self.eject_one(ivc);
                    progressed = true;
                    i = j;
                }
                self.scratch_eject = ready;
            }
        }
        // Keep VCs whose route is still Eject (their tail has not passed),
        // compacting in place — `eject_one` never pushes to `ejecting`.
        let mut kept = 0;
        for i in 0..self.ejecting.len() {
            let ivc = self.ejecting[i];
            if self.input_vcs[ivc as usize].route == Some(RouteTarget::Eject) {
                self.ejecting[kept] = ivc;
                kept += 1;
            }
        }
        self.ejecting.truncate(kept);
        progressed
    }

    fn eject_one(&mut self, ivc: u32) {
        let (node, port, _vc) = self.ivc_parts(ivc);
        let flit = self.input_vcs[ivc as usize].pop();
        self.occ[ivc as usize] -= 1;
        self.return_credit(node, port, ivc);
        self.metrics.flits_ejected += 1;
        self.flits_in_flight -= 1;
        self.trace(TraceEvent::FlitDelivered {
            cycle: self.cycle,
            msg: flit.msg,
            kind: flit.kind,
        });
        if flit.kind.is_tail() {
            let rec = self.slab.remove(flit.msg);
            let latency = self.cycle - rec.generated;
            self.trace(TraceEvent::Delivered {
                cycle: self.cycle,
                msg: flit.msg,
                latency,
            });
            self.metrics.delivered += 1;
            if let Some(sampler) = self.sampler.as_mut() {
                sampler.latency_sum += latency;
            }
            if let Some(reg) = self.registry.as_deref_mut() {
                reg.record_latency(latency);
            }
            // The documented hop class is the *minimal* src–dest distance;
            // hops_taken equals it on every fault-free path (all algorithms
            // route minimally), but misrouting around faults can exceed the
            // diameter, and the stratified estimator sizes its strata by
            // distance.
            self.delivered.push(DeliveredMessage {
                hop_class: self.topo.distance(rec.src, rec.route.dest()) as u16,
                latency,
                source_wait: rec.injected.unwrap_or(rec.generated) - rec.generated,
                length: rec.length,
                delivered_at: self.cycle,
            });
            self.after_tail_pop(ivc);
        }
    }

    fn execute_link_moves(&mut self) -> bool {
        let moves = std::mem::take(&mut self.scratch_moves);
        let progressed = !moves.is_empty();
        for mv in &moves {
            self.execute_link_move(*mv);
        }
        self.scratch_moves = moves;
        progressed
    }

    fn execute_link_move(&mut self, mv: LinkMove) {
        let (node, port, _) = self.ivc_parts(mv.ivc);
        debug_assert_eq!(node, mv.node);
        let flit = self.input_vcs[mv.ivc as usize].pop();
        self.occ[mv.ivc as usize] -= 1;
        let dir = Direction::from_index(mv.dir as usize);
        let inj_port = self.injection_port();

        if flit.kind.is_head() {
            // The head leaving a node is the moment the hop is decided:
            // advance the message's routing state.
            let class = self.vc_class[mv.vc as usize];
            let rec = self.slab.get_mut(flit.msg);
            rec.route
                .advance(&self.topo, NodeId::new(node), Candidate::new(dir, class));
            if port == inj_port {
                rec.injected = Some(self.cycle);
            }
            self.trace(TraceEvent::HopTaken {
                cycle: self.cycle,
                msg: flit.msg,
                from: NodeId::new(node),
                direction: dir,
                vc_class: class,
            });
        }
        if port == inj_port {
            self.metrics.flits_injected += 1;
            if flit.kind.is_tail() {
                // The message has fully left its source: release the
                // congestion-control slot and the streaming lane.
                let (injection_class, src) = {
                    let rec = self.slab.get(flit.msg);
                    (rec.injection_class, rec.src)
                };
                let (_, _, vc) = self.ivc_parts(mv.ivc);
                self.release_class_slot(src, injection_class);
                self.nodes[src.as_usize()]
                    .streaming_inj
                    .retain(|&v| v as usize != vc);
            }
        } else {
            self.return_credit(node, port, mv.ivc);
        }

        if flit.kind.is_tail() {
            self.remove_request(self.channel_index(node, mv.dir as usize), mv.ivc);
            self.after_tail_pop(mv.ivc);
        }

        // Deliver the flit into the neighbor's input buffer.
        let neighbor = self.neighbor_of[self.channel_index(node, mv.dir as usize)];
        debug_assert!(
            neighbor != u32::MAX,
            "routed moves follow existing channels"
        );
        let div = self.ivc_index(neighbor, dir.index(), mv.vc as usize);
        let was_empty = self.input_vcs[div as usize].buffer.is_empty();
        debug_assert!(
            (self.input_vcs[div as usize].buffer.len() as u32) < self.capacity,
            "credit flow control must prevent overflow"
        );
        self.input_vcs[div as usize].push(flit);
        self.occ[div as usize] += 1;
        if was_empty && flit.kind.is_head() {
            debug_assert!(self.input_vcs[div as usize].route.is_none());
            self.enqueue_pending(div);
        }

        // Channel bookkeeping.
        let ovc = self.ovc_index(node, mv.dir as usize, mv.vc as usize);
        self.out_credits[ovc] -= 1;
        if flit.kind.is_tail() {
            self.out_owner[ovc] = None;
        }
        self.metrics.flit_hops += 1;
        let class = self.vc_class[mv.vc as usize] as usize;
        self.metrics.class_flits[class] += 1;
        let ch = self.channel_index(node, mv.dir as usize);
        if let Some(loads) = self.metrics.channel_flits.as_mut() {
            loads[ch] += 1;
        }
        if let Some(reg) = self.registry.as_deref_mut() {
            reg.record_traversal(ch, class);
        }
    }

    /// Drops `ivc`'s entry from a channel's request row, shifting later
    /// entries left (same order as `Vec::retain`).
    fn remove_request(&mut self, ch: usize, ivc: u32) {
        let len = self.request_len[ch] as usize;
        let row = &mut self.requests[ch * self.vcs..ch * self.vcs + len];
        if let Some(pos) = row.iter().position(|r| r.ivc == ivc) {
            row.copy_within(pos + 1.., pos);
            self.request_len[ch] = (len - 1) as u8;
        }
    }

    /// After a tail leaves an input VC: if the next message's head is now
    /// at the front, it needs routing.
    fn after_tail_pop(&mut self, ivc: u32) {
        if let Some(front) = self.input_vcs[ivc as usize].front() {
            debug_assert!(
                front.kind.is_head(),
                "messages interleave only at message boundaries"
            );
            self.enqueue_pending(ivc);
        }
    }

    /// Returns one credit to the upstream output VC feeding `ivc` (no-op
    /// for injection ports, whose buffers are node-internal).
    fn return_credit(&mut self, node: u32, port: usize, ivc: u32) {
        if port >= self.dirs {
            return;
        }
        let arrive_dir = Direction::from_index(port);
        let upstream = self.neighbor_of[self.channel_index(node, arrive_dir.opposite().index())];
        debug_assert!(upstream != u32::MAX, "flits arrive over existing channels");
        let (_, _, vc) = self.ivc_parts(ivc);
        let ovc = self.ovc_index(upstream, arrive_dir.index(), vc);
        self.out_credits[ovc] += 1;
        debug_assert!(self.out_credits[ovc] <= self.capacity);
    }

    /// Releases one congestion-control slot of `class` at `src`.
    fn release_class_slot(&mut self, src: NodeId, class: u32) {
        let state = &mut self.nodes[src.as_usize()];
        if let Some(count) = state.class_counts.get_mut(&class) {
            *count -= 1;
            if *count == 0 {
                state.class_counts.remove(&class);
            }
        }
    }

    // ------------------------------------------------------------------
    // Fault handling.
    // ------------------------------------------------------------------

    /// Fallback candidate generation under faults: live minimal hops first;
    /// failing that, any live hop except straight back the way the worm
    /// came (and even that, as a last resort). All fallback hops use the
    /// top VC class — deadlock-freedom of these paths is not proven, which
    /// is exactly what the livelock guard and watchdog are for.
    fn fault_candidates(
        &self,
        here: NodeId,
        dest: NodeId,
        in_port: usize,
        out: &mut Vec<Candidate>,
    ) {
        let fs = self
            .faults
            .as_ref()
            .expect("fault fallback requires faults");
        let class = (self.classes - 1) as u8;
        let d_here = self.topo.distance(here, dest);
        let live = |dir: Direction| {
            self.topo.has_channel(here, dir) && fs.mask.channel_alive(self.topo.channel(here, dir))
        };
        for dir in Direction::all(self.topo.num_dims()) {
            if !live(dir) {
                continue;
            }
            let next = self.topo.neighbor(here, dir).expect("live implies exists");
            if self.topo.distance(next, dest) < d_here {
                out.push(Candidate::new(dir, class));
            }
        }
        if !out.is_empty() {
            return;
        }
        let back = (in_port < self.dirs).then(|| Direction::from_index(in_port).opposite());
        for dir in Direction::all(self.topo.num_dims()) {
            if Some(dir) != back && live(dir) {
                out.push(Candidate::new(dir, class));
            }
        }
        if out.is_empty() {
            if let Some(back) = back {
                if live(back) {
                    out.push(Candidate::new(back, class));
                }
            }
        }
    }

    /// Applies every fault transition due at the current cycle: rebuilds
    /// the mask and reachability, then sweeps the network for messages the
    /// new mask dooms or parks.
    fn apply_fault_transitions(&mut self) {
        loop {
            let due = self.faults.as_ref().is_some_and(|fs| {
                fs.transitions
                    .get(fs.next_transition)
                    .is_some_and(|&c| c <= self.cycle)
            });
            if !due {
                return;
            }
            let (mask, reach) = {
                let plan = self
                    .cfg
                    .faults
                    .as_ref()
                    .expect("fault state implies a plan");
                let mask = plan.mask_at(&self.topo, self.cycle);
                let reach = Reachability::compute(&self.topo, &mask);
                (mask, reach)
            };
            let fs = self.faults.as_mut().expect("checked above");
            fs.next_transition += 1;
            fs.mask = mask;
            fs.reach = reach;
            self.fault_sweep();
        }
    }

    /// Reconciles in-flight state with a changed fault mask:
    ///
    /// * messages severed by the new mask — flits buffered at a dead node
    ///   or behind a dead channel, reservations on a dead channel, a dead
    ///   endpoint, or a head that can no longer reach its destination —
    ///   are aborted and their flits dropped;
    /// * queued messages whose destination became unreachable are parked;
    /// * parked messages whose destination became reachable re-enter their
    ///   source queue.
    fn fault_sweep(&mut self) {
        let mut doomed: BTreeSet<MessageId> = BTreeSet::new();
        let mut to_park: Vec<MessageId> = Vec::new();
        let mut to_unpark: Vec<MessageId> = Vec::new();
        {
            let fs = self.faults.as_ref().expect("sweep requires fault state");
            let mut head_at: HashMap<MessageId, u32> = HashMap::new();
            let mut has_flits: HashSet<MessageId> = HashSet::new();
            for (i, slot) in self.input_vcs.iter().enumerate() {
                if slot.buffer.is_empty() {
                    continue;
                }
                let meta = self.ivc_meta[i];
                let node = NodeId::new(meta.node);
                let node_dead = !fs.mask.node_alive(node);
                // Flits buffered downstream of a dead channel are the
                // channel's in-transit flits: the worm is severed.
                let feed_dead = (meta.port as usize) < self.dirs && {
                    let dir = Direction::from_index(meta.port as usize);
                    match self.topo.neighbor(node, dir.opposite()) {
                        Some(up) => !fs.mask.channel_alive(self.topo.channel(up, dir)),
                        None => false,
                    }
                };
                for flit in &slot.buffer {
                    has_flits.insert(flit.msg);
                    if node_dead || feed_dead {
                        doomed.insert(flit.msg);
                    }
                    if flit.kind.is_head() {
                        head_at.insert(flit.msg, meta.node);
                    }
                }
            }
            // Reservations crossing a dead channel.
            for ovc in 0..self.out_owner.len() {
                if let Some(msg) = self.out_owner[ovc] {
                    let (node, dir) = self.ch_owner[ovc / self.vcs];
                    let ch = self
                        .topo
                        .channel(NodeId::new(node), Direction::from_index(dir as usize));
                    if !fs.mask.channel_alive(ch) {
                        doomed.insert(msg);
                    }
                }
            }
            for (id, rec) in self.slab.iter() {
                let dest = rec.route.dest();
                if !fs.mask.node_alive(rec.src) || !fs.mask.node_alive(dest) {
                    doomed.insert(id);
                    continue;
                }
                if let Some(&h) = head_at.get(&id) {
                    if !fs.reach.routable(NodeId::new(h), dest) {
                        doomed.insert(id);
                    }
                } else if !has_flits.contains(&id) {
                    // No flits in any buffer: the message is still in its
                    // source queue, or already parked.
                    let is_parked = fs.parked.binary_search(&id).is_ok();
                    let routable = fs.reach.routable(rec.src, dest);
                    if routable && is_parked {
                        to_unpark.push(id);
                    } else if !routable && !is_parked {
                        to_park.push(id);
                    }
                }
            }
        }
        for id in to_park {
            let (src, length) = {
                let rec = self.slab.get(id);
                (rec.src, rec.length)
            };
            let queue = &mut self.nodes[src.as_usize()].queue;
            if let Some(pos) = queue.iter().position(|&m| m == id) {
                queue.remove(pos);
                let fs = self.faults.as_mut().expect("sweep requires fault state");
                fs.parked.push(id);
                fs.parked_flits += u64::from(length);
            }
        }
        for id in to_unpark {
            let (src, length) = {
                let rec = self.slab.get(id);
                (rec.src, rec.length)
            };
            let fs = self.faults.as_mut().expect("sweep requires fault state");
            if let Ok(pos) = fs.parked.binary_search(&id) {
                fs.parked.remove(pos);
                fs.parked_flits -= u64::from(length);
                self.nodes[src.as_usize()].queue.push_back(id);
                self.inj_dirty.insert(src.as_usize());
            }
        }
        if let Some(fs) = self.faults.as_mut() {
            fs.parked.sort_unstable();
        }
        for id in doomed {
            self.abort_message(id);
        }
    }

    /// Kills one live message wherever it is — source queue, parked list,
    /// or spread across input buffers — releasing every resource it holds
    /// (buffer slots, credits, routes, output-VC reservations, its
    /// congestion-control slot) and dropping its flits.
    fn abort_message(&mut self, msg: MessageId) {
        let (length, src, injection_class) = {
            let rec = self.slab.get(msg);
            (rec.length, rec.src, rec.injection_class)
        };

        // Still at the source, flitless: queued or parked.
        let queue_pos = self.nodes[src.as_usize()]
            .queue
            .iter()
            .position(|&m| m == msg);
        let parked_pos = self
            .faults
            .as_ref()
            .and_then(|fs| fs.parked.binary_search(&msg).ok());
        if let Some(pos) = queue_pos {
            self.nodes[src.as_usize()].queue.remove(pos);
        } else if let Some(pos) = parked_pos {
            let fs = self.faults.as_mut().expect("parked implies fault state");
            fs.parked.remove(pos);
            fs.parked_flits -= u64::from(length);
        }
        if queue_pos.is_some() || parked_pos.is_some() {
            self.release_class_slot(src, injection_class);
            self.flits_in_flight -= u64::from(length);
            self.metrics.messages_aborted += 1;
            self.metrics.flits_dropped += u64::from(length);
            self.slab.remove(msg);
            return;
        }

        // In the network: sweep every input VC for its flits and routes.
        let inj_port = self.injection_port();
        let mut dropped = 0u64;
        let mut revealed: Vec<u32> = Vec::new();
        for ivc in 0..self.input_vcs.len() as u32 {
            let owns_route = self.input_vcs[ivc as usize].route_msg == Some(msg);
            if owns_route {
                let (node, _, _) = self.ivc_parts(ivc);
                match self.input_vcs[ivc as usize].route {
                    Some(RouteTarget::Link { dir, .. }) => {
                        self.remove_request(self.channel_index(node, dir as usize), ivc);
                    }
                    Some(RouteTarget::Eject) => {
                        self.ejecting.retain(|&e| e != ivc);
                    }
                    None => {}
                }
                let slot = &mut self.input_vcs[ivc as usize];
                slot.route = None;
                slot.route_msg = None;
            }
            if self.input_vcs[ivc as usize].buffer.is_empty() {
                continue;
            }
            let (removed, front_was_msg) = self.input_vcs[ivc as usize].purge_message(msg);
            if removed == 0 {
                continue;
            }
            let (node, port, vc) = self.ivc_parts(ivc);
            self.occ[ivc as usize] -= removed;
            dropped += u64::from(removed);
            if port == inj_port {
                // An injection VC holds flits of at most one message, so it
                // is now empty: the tail never left the source — release
                // the streaming lane and the congestion slot.
                self.nodes[node as usize]
                    .streaming_inj
                    .retain(|&v| v as usize != vc);
                self.release_class_slot(NodeId::new(node), injection_class);
            } else {
                for _ in 0..removed {
                    self.return_credit(node, port, ivc);
                }
            }
            // The purge exposed a new front only when this VC's route
            // belonged to the dead message; an unrouted head at the front
            // means the VC is already in `pending_route` (kept or dropped
            // by the retain below).
            if owns_route && front_was_msg && !self.input_vcs[ivc as usize].buffer.is_empty() {
                revealed.push(ivc);
            }
        }
        for ovc in 0..self.out_owner.len() {
            if self.out_owner[ovc] == Some(msg) {
                self.out_owner[ovc] = None;
            }
        }
        self.pending_route.retain(|&p| {
            let slot = &self.input_vcs[p as usize];
            slot.route.is_none() && slot.front().is_some_and(|f| f.kind.is_head())
        });
        for ivc in revealed {
            debug_assert!(
                self.input_vcs[ivc as usize]
                    .front()
                    .is_some_and(|f| f.kind.is_head()),
                "messages interleave only at message boundaries"
            );
            self.enqueue_pending(ivc);
        }
        self.flits_in_flight -= dropped;
        self.metrics.messages_aborted += 1;
        self.metrics.flits_dropped += dropped;
        self.slab.remove(msg);
    }

    /// Scans the live-message slab for messages over the hop or age budget
    /// (parked messages are exempt — they are waiting on a repair, not
    /// starving). Sets the sticky [`LivelockReport`] on the first find.
    fn check_livelock(&mut self) {
        let mut over = 0usize;
        let mut max_hops = 0u32;
        let mut max_age = 0u64;
        for (id, rec) in self.slab.iter() {
            if self
                .faults
                .as_ref()
                .is_some_and(|fs| fs.parked.binary_search(&id).is_ok())
            {
                continue;
            }
            let hops = rec.route.hops_taken();
            let age = self.cycle - rec.generated;
            if self.cfg.hop_budget.is_some_and(|b| hops > b)
                || self.cfg.age_budget.is_some_and(|b| age > b)
            {
                over += 1;
                max_hops = max_hops.max(hops);
                max_age = max_age.max(age);
            }
        }
        if over > 0 {
            self.livelock = Some(LivelockReport {
                detected_at: self.cycle,
                messages_over_budget: over,
                max_hops,
                max_age,
            });
        }
    }

    // ------------------------------------------------------------------
    // Wait-for forensics.
    // ------------------------------------------------------------------

    /// Captures the worm→channel wait-for graph at the current cycle and
    /// runs cycle detection over it, so a watchdog or livelock verdict
    /// carries evidence of a real channel cycle (or its absence).
    ///
    /// Two kinds of waits are recorded:
    ///
    /// * **VC waits**: a head pending routing whose admissible output VCs
    ///   are all owned by other messages — one edge per owning message.
    /// * **Credit waits**: a routed worm with flits ready but zero credits
    ///   — the downstream buffer is full; the edge points at the message
    ///   whose flit is at the downstream front. Waits behind the worm's
    ///   *own* downstream flits are skipped (that wait resolves through
    ///   the worm's head, which contributes its own edge).
    ///
    /// Read-only and cold: meant to run once, after the watchdog fires.
    pub fn wait_for_snapshot(&self, reason: &str) -> WaitForSnapshot {
        let mut snap = WaitForSnapshot {
            cycle: self.cycle,
            reason: reason.to_owned(),
            live_messages: self.slab.live() as u64,
            flits_in_flight: self.flits_in_flight,
            ..WaitForSnapshot::default()
        };
        let mut seen: BTreeSet<(u32, usize, u32)> = BTreeSet::new();

        // Heads pending routing: blocked on VC allocation.
        let mut candidates: Vec<Candidate> = Vec::new();
        for &ivc in &self.pending_route {
            let (node, _, _) = self.ivc_parts(ivc);
            let Some(front) = self.input_vcs[ivc as usize].front() else {
                continue;
            };
            let msg = front.msg;
            let here = NodeId::new(node);
            let route = self.slab.get(msg).route;
            candidates.clear();
            self.algo
                .candidates(&self.topo, &route, here, &mut candidates);
            if let Some(fs) = &self.faults {
                if !fs.mask.is_trivial() {
                    candidates.retain(|c| {
                        fs.mask
                            .channel_alive(self.topo.channel(here, c.direction()))
                    });
                }
            }
            let max_class = (self.classes - 1) as u8;
            for cand in &candidates {
                let dir = cand.direction().index();
                let base = cand.vc_class().min(max_class) as usize * self.replicas;
                let ch = self.channel_index(node, dir);
                for r in 0..self.replicas {
                    let ovc = self.ovc_index(node, dir, base + r);
                    if let Some(owner) = self.out_owner[ovc] {
                        if owner != msg && seen.insert((msg.index(), ch, owner.index())) {
                            snap.edges.push(WaitForEdge {
                                msg: u64::from(msg.index()),
                                node: u64::from(node),
                                channel: ch as u64,
                                holder: u64::from(owner.index()),
                                kind: WaitKind::Vc,
                            });
                        }
                    }
                }
            }
        }

        // Routed worms with flits ready but no credits: blocked on the
        // downstream buffer.
        for ivc in 0..self.input_vcs.len() as u32 {
            let slot = &self.input_vcs[ivc as usize];
            let (Some(RouteTarget::Link { dir, vc }), Some(msg)) = (slot.route, slot.route_msg)
            else {
                continue;
            };
            if self.occ[ivc as usize] == 0 {
                continue;
            }
            let (node, _, _) = self.ivc_parts(ivc);
            let ovc = self.ovc_index(node, dir as usize, vc as usize);
            if self.out_credits[ovc] != 0 {
                continue;
            }
            let ch = self.channel_index(node, dir as usize);
            let neighbor = self.neighbor_of[ch];
            debug_assert!(neighbor != u32::MAX, "routes follow existing channels");
            let div = self.ivc_index(neighbor, dir as usize, vc as usize);
            let Some(front) = self.input_vcs[div as usize].front() else {
                continue;
            };
            let holder = front.msg;
            if holder != msg && seen.insert((msg.index(), ch, holder.index())) {
                snap.edges.push(WaitForEdge {
                    msg: u64::from(msg.index()),
                    node: u64::from(node),
                    channel: ch as u64,
                    holder: u64::from(holder.index()),
                    kind: WaitKind::Credit,
                });
            }
        }

        snap.detect_cycle();
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkBuilder;
    use wormsim_routing::AlgorithmKind;

    fn tiny(algorithm: AlgorithmKind) -> Network {
        NetworkBuilder::new(Topology::torus(&[4, 4]), algorithm)
            .seed(1)
            .build()
            .unwrap()
    }

    #[test]
    fn indexing_roundtrip() {
        let net = tiny(AlgorithmKind::PositiveHop);
        for node in 0..16u32 {
            for port in 0..net.ports {
                for vc in 0..net.vcs {
                    let ivc = net.ivc_index(node, port, vc);
                    assert_eq!(net.ivc_parts(ivc), (node, port, vc));
                }
            }
        }
    }

    #[test]
    fn empty_network_steps_quietly() {
        let mut net = tiny(AlgorithmKind::Ecube);
        net.run(1000);
        assert_eq!(net.metrics().generated, 0);
        assert_eq!(net.flits_in_flight(), 0);
        assert!(net.deadlock_report().is_none());
        assert_eq!(net.cycle(), 1000);
    }

    #[test]
    fn cancelled_token_stops_run_promptly() {
        let token = crate::CancelToken::new();
        token.cancel();
        let mut net = tiny(AlgorithmKind::Ecube);
        net.set_cancel_token(token.clone());
        net.run(1_000_000);
        assert_eq!(net.cycle(), 0, "pre-cancelled run executes no cycles");

        // The drain path honors the token too: an injected message never
        // delivers because run_until_empty returns at its first check.
        let src = net.topology().node_at(&[0, 0]);
        let dest = net.topology().node_at(&[2, 1]);
        net.inject(src, dest, 16);
        assert!(!net.run_until_empty(1_000));
        assert_eq!(net.cycle(), 0);
    }

    #[test]
    fn uncancelled_token_changes_nothing() {
        // Same seed, one with an (untripped) token: bit-identical traffic.
        let busy = || {
            NetworkBuilder::new(Topology::torus(&[4, 4]), AlgorithmKind::PositiveHop)
                .arrival(wormsim_traffic::ArrivalProcess::geometric(0.02).unwrap())
                .seed(7)
                .build()
                .unwrap()
        };
        let mut plain = busy();
        let mut tokened = busy();
        tokened.set_cancel_token(crate::CancelToken::new());
        plain.run(3_000);
        tokened.run(3_000);
        assert_eq!(plain.cycle(), tokened.cycle());
        assert_eq!(plain.metrics().generated, tokened.metrics().generated);
        assert_eq!(plain.metrics().delivered, tokened.metrics().delivered);
        assert_eq!(plain.metrics().flit_hops, tokened.metrics().flit_hops);
    }

    #[test]
    fn mid_run_cancellation_is_stride_bounded() {
        let token = crate::CancelToken::new();
        let mut net = tiny(AlgorithmKind::Ecube);
        net.set_cancel_token(token.clone());
        net.run(500); // below the check stride: runs to completion
        assert_eq!(net.cycle(), 500);
        token.cancel();
        net.run(100_000);
        // The first check (n == 0) sees the tripped token immediately.
        assert_eq!(net.cycle(), 500);
    }

    #[test]
    fn single_message_zero_load_latency() {
        // Equation 2 with w = 0: latency = m_l + d - 1.
        for algorithm in [
            AlgorithmKind::Ecube,
            AlgorithmKind::NorthLast,
            AlgorithmKind::TwoPowerN,
            AlgorithmKind::PositiveHop,
            AlgorithmKind::NegativeHop,
            AlgorithmKind::NegativeHopBonusCards,
        ] {
            let mut net = tiny(algorithm);
            let src = net.topology().node_at(&[0, 0]);
            let dest = net.topology().node_at(&[2, 1]);
            net.inject(src, dest, 16);
            assert!(net.run_until_empty(1_000), "{algorithm} should drain");
            let delivered = net.drain_delivered();
            assert_eq!(delivered.len(), 1, "{algorithm}");
            let d = delivered[0];
            assert_eq!(d.hop_class, 3, "{algorithm}");
            assert_eq!(d.latency, 16 + 3 - 1, "{algorithm}: zero-load latency");
            assert_eq!(d.source_wait, 0, "{algorithm}");
        }
    }

    #[test]
    fn single_flit_message_latency() {
        let mut net = tiny(AlgorithmKind::Ecube);
        let src = net.topology().node_at(&[0, 0]);
        let dest = net.topology().node_at(&[1, 0]);
        net.inject(src, dest, 1);
        assert!(net.run_until_empty(100));
        let d = net.drain_delivered();
        assert_eq!(d[0].latency, 1);
    }

    #[test]
    fn flit_conservation() {
        let mut net = tiny(AlgorithmKind::NegativeHop);
        let topo = net.topology().clone();
        for i in 0..10u32 {
            let src = NodeId::new(i % 16);
            let dest = NodeId::new((i * 7 + 3) % 16);
            if src != dest {
                net.inject(src, dest, 4 + i % 5);
            }
        }
        let injected_flits = net.flits_in_flight();
        assert!(net.run_until_empty(10_000));
        assert_eq!(net.metrics().flits_ejected, injected_flits);
        assert_eq!(
            net.metrics().delivered as usize,
            net.drain_delivered().len()
        );
        assert_eq!(net.live_messages(), 0);
        let _ = topo;
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut net = NetworkBuilder::new(Topology::torus(&[4, 4]), AlgorithmKind::PositiveHop)
                .arrival(wormsim_traffic::ArrivalProcess::geometric(0.02).unwrap())
                .message_length(wormsim_traffic::MessageLength::fixed(8).unwrap())
                .seed(seed)
                .build()
                .unwrap();
            net.run(2_000);
            (
                net.metrics().generated,
                net.metrics().delivered,
                net.metrics().flit_hops,
            )
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn adaptive_traffic_flows_around_static_link_faults() {
        let topo = Topology::torus(&[4, 4]);
        let plan = wormsim_faults::FaultPlan::random_links(
            &topo,
            6,
            7,
            &wormsim_faults::FaultRegion::Anywhere,
        );
        let mut net = NetworkBuilder::new(topo, AlgorithmKind::PositiveHop)
            .arrival(wormsim_traffic::ArrivalProcess::geometric(0.01).unwrap())
            .message_length(wormsim_traffic::MessageLength::fixed(8).unwrap())
            .faults(plan)
            .hop_budget(Some(200))
            .seed(1993)
            .build()
            .unwrap();
        net.run(3_000);
        assert_eq!(net.fault_mask().unwrap().dead_channel_count(), 6);
        assert!(net.metrics().generated > 0);
        assert!(
            net.metrics().delivered > 0,
            "traffic must route around faults"
        );
    }

    #[test]
    fn severed_in_flight_message_is_aborted_and_resources_reclaimed() {
        // A 4-node line; the worm 0 -> 3 is cut mid-flight when the channel
        // out of node 1 dies at cycle 4.
        let topo = Topology::mesh(&[4]);
        let mut plan = wormsim_faults::FaultPlan::new();
        plan.push(wormsim_faults::Fault {
            target: wormsim_faults::FaultTarget::Link {
                node: NodeId::new(1),
                direction: Direction::new(0, wormsim_topology::Sign::Plus),
            },
            fail_at: 4,
            repair_at: None,
        });
        let mut net = NetworkBuilder::new(topo, AlgorithmKind::Ecube)
            .faults(plan)
            .seed(1)
            .build()
            .unwrap();
        net.inject(NodeId::new(0), NodeId::new(3), 8);
        assert!(net.run_until_empty(1_000));
        let m = net.metrics();
        assert_eq!(m.messages_aborted, 1);
        assert_eq!(m.delivered, 0);
        assert!(m.flits_dropped > 0);
        assert_eq!(net.flits_in_flight(), 0);
        assert_eq!(net.live_messages(), 0);
        assert!(net.deadlock_report().is_none());
    }

    #[test]
    fn queued_messages_park_during_partition_and_resume_after_repair() {
        // Two nodes; the only forward channel dies for cycles 2..50. The
        // streaming message is severed; the two still-queued messages park
        // (exempt from the watchdog) and deliver after the repair.
        let topo = Topology::mesh(&[2]);
        let mut plan = wormsim_faults::FaultPlan::new();
        plan.push(wormsim_faults::Fault {
            target: wormsim_faults::FaultTarget::Link {
                node: NodeId::new(0),
                direction: Direction::new(0, wormsim_topology::Sign::Plus),
            },
            fail_at: 2,
            repair_at: Some(50),
        });
        let mut net = NetworkBuilder::new(topo, AlgorithmKind::Ecube)
            .faults(plan)
            .congestion_limit(None)
            .seed(1)
            .build()
            .unwrap();
        for _ in 0..3 {
            net.inject(NodeId::new(0), NodeId::new(1), 4);
        }
        net.run(10);
        let aborted = net.metrics().messages_aborted;
        assert!(aborted >= 1, "the in-flight worm is severed");
        assert_eq!(net.metrics().delivered, 0);
        assert_eq!(net.parked_messages() + aborted as usize, 3);
        assert!(net.parked_messages() >= 1);
        assert_eq!(net.active_flits(), 0, "parked flits do not count as active");
        assert!(net.run_until_empty(1_000));
        assert_eq!(net.parked_messages(), 0);
        assert_eq!(net.metrics().delivered, 3 - aborted);
        assert_eq!(net.live_messages(), 0);
        assert!(net.deadlock_report().is_none());
    }

    #[test]
    fn livelock_guard_flags_messages_over_budget() {
        // The sole forward channel is dead from cycle 0 and never repaired;
        // a manually injected message (which bypasses the reachability check
        // at generation) waits forever. The age budget flags it.
        let topo = Topology::mesh(&[2]);
        let mut plan = wormsim_faults::FaultPlan::new();
        plan.push_dead_link(
            NodeId::new(0),
            Direction::new(0, wormsim_topology::Sign::Plus),
        );
        let mut net = NetworkBuilder::new(topo, AlgorithmKind::Ecube)
            .faults(plan)
            .age_budget(Some(100))
            .seed(1)
            .build()
            .unwrap();
        net.inject(NodeId::new(0), NodeId::new(1), 4);
        net.run(600);
        let report = net.livelock_report().expect("age budget must trip");
        assert!(report.max_age > 100);
        assert_eq!(report.messages_over_budget, 1);
    }
}

//! Engine configuration errors.

use std::fmt;
use wormsim_faults::FaultPlanError;
use wormsim_routing::RoutingError;
use wormsim_traffic::TrafficError;

/// Errors produced when assembling a [`Network`](crate::Network).
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// The routing algorithm rejected the topology.
    Routing(RoutingError),
    /// The traffic configuration rejected the topology or its parameters.
    Traffic(TrafficError),
    /// The fault plan does not fit the topology.
    Faults(FaultPlanError),
    /// Wormhole buffer depth must be at least 1.
    ZeroBufferDepth,
    /// At least one physical VC per routing class is required.
    ZeroReplicas,
    /// Injection bandwidth must be at least 1 flit per cycle.
    ZeroInjectionBandwidth,
    /// The congestion-control limit must be at least 1 when present.
    ZeroCongestionLimit,
    /// Too many physical VCs per channel: `classes * replicas` must fit the
    /// engine's `u8` per-channel bookkeeping (request-row occupancy and
    /// round-robin pointers).
    TooManyVcs {
        /// The requested `classes * replicas` product.
        vcs: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Routing(e) => write!(f, "routing: {e}"),
            EngineError::Traffic(e) => write!(f, "traffic: {e}"),
            EngineError::Faults(e) => write!(f, "faults: {e}"),
            EngineError::ZeroBufferDepth => write!(f, "buffer depth must be at least 1"),
            EngineError::ZeroReplicas => write!(f, "vc replicas must be at least 1"),
            EngineError::ZeroInjectionBandwidth => {
                write!(f, "injection bandwidth must be at least 1")
            }
            EngineError::ZeroCongestionLimit => {
                write!(f, "congestion limit must be at least 1 when enabled")
            }
            EngineError::TooManyVcs { vcs } => {
                write!(
                    f,
                    "{vcs} virtual channels per physical channel exceeds the supported 255 \
                     (reduce vc replicas or the network diameter)"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Routing(e) => Some(e),
            EngineError::Traffic(e) => Some(e),
            EngineError::Faults(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RoutingError> for EngineError {
    fn from(e: RoutingError) -> Self {
        EngineError::Routing(e)
    }
}

impl From<TrafficError> for EngineError {
    fn from(e: TrafficError) -> Self {
        EngineError::Traffic(e)
    }
}

impl From<FaultPlanError> for EngineError {
    fn from(e: FaultPlanError) -> Self {
        EngineError::Faults(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = EngineError::from(RoutingError::UnknownAlgorithm { name: "x".into() });
        assert!(e.to_string().contains("routing"));
        assert!(e.source().is_some());
        assert!(EngineError::ZeroBufferDepth.source().is_none());
    }
}

//! A flit-level, cycle-driven simulator for wormhole, virtual-cut-through,
//! and store-and-forward switching on tori and meshes.
//!
//! This is the substrate of the ISCA '93 reproduction: a [`Network`] wires a
//! topology, one of the six routing algorithms, and a traffic pattern into a
//! synchronous flit-level model with
//!
//! * **virtual channels** per physical channel (one or more physical VCs per
//!   routing class), with credit-based flow control,
//! * **time-multiplexed physical channels** — at most one flit per channel
//!   per cycle, `f_t = 1`, shared round-robin among ready VCs,
//! * three switching disciplines ([`Switching`]): wormhole (small per-VC
//!   flit buffers), virtual cut-through (message-sized buffers, blocked
//!   messages accumulate), and store-and-forward (forwarding waits for the
//!   full message),
//! * the paper's **input-buffer-limit congestion control**: a node may hold
//!   at most `limit` un-injected messages per message class; excess
//!   generation is refused,
//! * a **deadlock watchdog** that flags windows without forward progress.
//!
//! Each cycle proceeds in deterministic phases: arrivals → injection-VC
//! assignment → routing & VC allocation → switch allocation → flit
//! transfers/ejection. All transfer decisions read start-of-cycle state, so
//! results do not depend on iteration order within a phase.
//!
//! # Example
//!
//! ```
//! use wormsim_engine::{NetworkBuilder, Switching};
//! use wormsim_topology::Topology;
//! use wormsim_routing::AlgorithmKind;
//! use wormsim_traffic::{TrafficConfig, ArrivalProcess, MessageLength};
//!
//! let mut net = NetworkBuilder::new(Topology::torus(&[8, 8]), AlgorithmKind::PositiveHop)
//!     .traffic(TrafficConfig::Uniform)
//!     .arrival(ArrivalProcess::geometric(0.005)?)
//!     .message_length(MessageLength::fixed(16)?)
//!     .seed(1)
//!     .build()?;
//!
//! net.run(5_000);
//! let m = net.metrics();
//! assert!(m.delivered > 0);
//! assert!(net.deadlock_report().is_none());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cancel;
mod config;
mod error;
mod flit;
mod message;
mod metrics;
mod network;
mod observer;
mod trace;
mod vc;

pub use cancel::CancelToken;
pub use config::{EjectionModel, NetworkBuilder, SelectionPolicy, SimConfig, Switching};
pub use error::EngineError;
pub use flit::{Flit, FlitKind, MessageId};
pub use metrics::{DeliveredMessage, Metrics};
pub use network::{DeadlockReport, LivelockReport, Network, DEFAULT_TRACE_CAPACITY};
pub use observer::ObserverHandle;
pub use trace::TraceEvent;

/// The observability layer (sinks, samples, manifests), re-exported so
/// engine users need no direct `wormsim-observe` dependency.
pub use wormsim_observe as observe;

/// The fault-injection layer (plans, regions, reachability), re-exported
/// so engine users need no direct `wormsim-faults` dependency.
pub use wormsim_faults as faults;

//! Message-lifecycle tracing.
//!
//! When enabled, the [`Network`](crate::Network) records one
//! [`TraceEvent`] per message milestone — generation, refusal, injection,
//! every hop, delivery — into an in-memory buffer the caller drains.
//! Tracing is for debugging and route inspection on bounded runs; the
//! buffer grows with traffic, so long saturated simulations should drain
//! it regularly (or leave tracing off, its cost when disabled is one
//! branch per event site).

use crate::{FlitKind, MessageId};
use wormsim_topology::{Direction, NodeId};

/// One message milestone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A message was accepted into its source queue.
    Generated {
        /// Simulation cycle.
        cycle: u64,
        /// The new message.
        msg: MessageId,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dest: NodeId,
        /// Length in flits.
        length: u32,
    },
    /// Congestion control refused a would-be message.
    Refused {
        /// Simulation cycle.
        cycle: u64,
        /// The node whose message was refused.
        src: NodeId,
        /// The congestion-control class that was full.
        class: u32,
    },
    /// A message left its source queue for an injection virtual channel.
    InjectionStarted {
        /// Simulation cycle.
        cycle: u64,
        /// The message.
        msg: MessageId,
    },
    /// A message's head flit left a node (one routing hop decided).
    HopTaken {
        /// Simulation cycle.
        cycle: u64,
        /// The message.
        msg: MessageId,
        /// The node the head departed from.
        from: NodeId,
        /// The direction travelled.
        direction: Direction,
        /// The virtual-channel class used.
        vc_class: u8,
    },
    /// A flit was consumed at the destination; `kind` tells which one
    /// (the tail flit completes the message).
    FlitDelivered {
        /// Simulation cycle.
        cycle: u64,
        /// The message.
        msg: MessageId,
        /// Which flit arrived.
        kind: FlitKind,
    },
    /// The whole message was delivered.
    Delivered {
        /// Simulation cycle.
        cycle: u64,
        /// The message.
        msg: MessageId,
        /// End-to-end latency in cycles.
        latency: u64,
    },
}

impl TraceEvent {
    /// The cycle the event occurred in.
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::Generated { cycle, .. }
            | TraceEvent::Refused { cycle, .. }
            | TraceEvent::InjectionStarted { cycle, .. }
            | TraceEvent::HopTaken { cycle, .. }
            | TraceEvent::FlitDelivered { cycle, .. }
            | TraceEvent::Delivered { cycle, .. } => cycle,
        }
    }

    /// The message the event concerns, if any (refusals have none — the
    /// message was never created).
    pub fn msg(&self) -> Option<MessageId> {
        match *self {
            TraceEvent::Generated { msg, .. }
            | TraceEvent::InjectionStarted { msg, .. }
            | TraceEvent::HopTaken { msg, .. }
            | TraceEvent::FlitDelivered { msg, .. }
            | TraceEvent::Delivered { msg, .. } => Some(msg),
            TraceEvent::Refused { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let e = TraceEvent::Refused { cycle: 7, src: NodeId::new(1), class: 2 };
        assert_eq!(e.cycle(), 7);
        assert_eq!(e.msg(), None);
        let e = TraceEvent::Delivered { cycle: 9, msg: MessageId(3), latency: 20 };
        assert_eq!(e.cycle(), 9);
        assert_eq!(e.msg(), Some(MessageId(3)));
    }
}

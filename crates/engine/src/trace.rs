//! Message-lifecycle tracing.
//!
//! When enabled, the [`Network`](crate::Network) records one
//! [`TraceEvent`] per message milestone — generation, refusal, injection,
//! every hop, delivery — and dispatches it to the configured
//! [`EventSink`](wormsim_observe::EventSink). The default sink installed by
//! [`observer().trace_ring()`](crate::ObserverHandle::trace_ring) is a
//! bounded ring holding the most recent
//! [`DEFAULT_TRACE_CAPACITY`](crate::DEFAULT_TRACE_CAPACITY)
//! events (older events are evicted and counted), so tracing is safe to
//! leave on for long saturated runs; stream to a
//! [`JsonlSink`](wormsim_observe::JsonlSink) via
//! [`observer().trace_into(sink)`](crate::ObserverHandle::trace_into) when
//! the full history matters. The cost when disabled is one branch per
//! event site.
//!
//! Events serialize as line JSON through
//! [`JsonRecord`](wormsim_observe::JsonRecord) with a `"type":"trace"` tag
//! and an `"event"` discriminant, and parse back via
//! [`TraceEvent::from_json`].

use crate::{FlitKind, MessageId};
use serde::{Deserialize, Serialize};
use wormsim_observe::json::Value;
use wormsim_observe::{JsonObject, JsonRecord};
use wormsim_topology::{Direction, NodeId};

/// One message milestone.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A message was accepted into its source queue.
    Generated {
        /// Simulation cycle.
        cycle: u64,
        /// The new message.
        msg: MessageId,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dest: NodeId,
        /// Length in flits.
        length: u32,
    },
    /// Congestion control refused a would-be message.
    Refused {
        /// Simulation cycle.
        cycle: u64,
        /// The node whose message was refused.
        src: NodeId,
        /// The congestion-control class that was full.
        class: u32,
    },
    /// A message left its source queue for an injection virtual channel.
    InjectionStarted {
        /// Simulation cycle.
        cycle: u64,
        /// The message.
        msg: MessageId,
    },
    /// A message's head flit left a node (one routing hop decided).
    HopTaken {
        /// Simulation cycle.
        cycle: u64,
        /// The message.
        msg: MessageId,
        /// The node the head departed from.
        from: NodeId,
        /// The direction travelled.
        direction: Direction,
        /// The virtual-channel class used.
        vc_class: u8,
    },
    /// A flit was consumed at the destination; `kind` tells which one
    /// (the tail flit completes the message).
    FlitDelivered {
        /// Simulation cycle.
        cycle: u64,
        /// The message.
        msg: MessageId,
        /// Which flit arrived.
        kind: FlitKind,
    },
    /// The whole message was delivered.
    Delivered {
        /// Simulation cycle.
        cycle: u64,
        /// The message.
        msg: MessageId,
        /// End-to-end latency in cycles.
        latency: u64,
    },
}

impl TraceEvent {
    /// The cycle the event occurred in.
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::Generated { cycle, .. }
            | TraceEvent::Refused { cycle, .. }
            | TraceEvent::InjectionStarted { cycle, .. }
            | TraceEvent::HopTaken { cycle, .. }
            | TraceEvent::FlitDelivered { cycle, .. }
            | TraceEvent::Delivered { cycle, .. } => cycle,
        }
    }

    /// The message the event concerns, if any (refusals have none — the
    /// message was never created).
    pub fn msg(&self) -> Option<MessageId> {
        match *self {
            TraceEvent::Generated { msg, .. }
            | TraceEvent::InjectionStarted { msg, .. }
            | TraceEvent::HopTaken { msg, .. }
            | TraceEvent::FlitDelivered { msg, .. }
            | TraceEvent::Delivered { msg, .. } => Some(msg),
            TraceEvent::Refused { .. } => None,
        }
    }

    /// Reconstructs an event from its parsed JSON form.
    ///
    /// # Errors
    ///
    /// Reports an unknown event tag or a missing/mistyped field.
    pub fn from_json(value: &Value) -> Result<Self, String> {
        let u64_field = |name: &str| -> Result<u64, String> {
            value
                .get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("trace field '{name}' missing or not a u64"))
        };
        let u32_field = |name: &str| -> Result<u32, String> {
            u32::try_from(u64_field(name)?)
                .map_err(|_| format!("trace field '{name}' out of u32 range"))
        };
        let msg = || Ok::<_, String>(MessageId(u32_field("msg")?));
        let node = |name: &str| Ok::<_, String>(NodeId::new(u32_field(name)?));
        if value.get("type").and_then(Value::as_str) != Some("trace") {
            return Err("record is not of type 'trace'".to_owned());
        }
        let cycle = u64_field("cycle")?;
        match value.get("event").and_then(Value::as_str) {
            Some("generated") => Ok(TraceEvent::Generated {
                cycle,
                msg: msg()?,
                src: node("src")?,
                dest: node("dest")?,
                length: u32_field("length")?,
            }),
            Some("refused") => Ok(TraceEvent::Refused {
                cycle,
                src: node("src")?,
                class: u32_field("class")?,
            }),
            Some("injection_started") => Ok(TraceEvent::InjectionStarted { cycle, msg: msg()? }),
            Some("hop") => Ok(TraceEvent::HopTaken {
                cycle,
                msg: msg()?,
                from: node("from")?,
                direction: Direction::from_index(
                    u64_field("direction")?
                        .try_into()
                        .map_err(|_| "direction out of range".to_owned())?,
                ),
                vc_class: u32_field("vc_class")?
                    .try_into()
                    .map_err(|_| "vc_class out of u8 range".to_owned())?,
            }),
            Some("flit_delivered") => Ok(TraceEvent::FlitDelivered {
                cycle,
                msg: msg()?,
                kind: match value.get("kind").and_then(Value::as_str) {
                    Some("head") => FlitKind::Head,
                    Some("body") => FlitKind::Body,
                    Some("tail") => FlitKind::Tail,
                    Some("single") => FlitKind::Single,
                    other => return Err(format!("unknown flit kind {other:?}")),
                },
            }),
            Some("delivered") => Ok(TraceEvent::Delivered {
                cycle,
                msg: msg()?,
                latency: u64_field("latency")?,
            }),
            other => Err(format!("unknown trace event tag {other:?}")),
        }
    }
}

impl JsonRecord for TraceEvent {
    fn write_json(&self, out: &mut String) {
        let mut obj = JsonObject::begin(out);
        obj.field_str("type", "trace");
        match *self {
            TraceEvent::Generated {
                cycle,
                msg,
                src,
                dest,
                length,
            } => {
                obj.field_str("event", "generated")
                    .field_u64("cycle", cycle)
                    .field_u64("msg", u64::from(msg.index()))
                    .field_u64("src", u64::from(src.index()))
                    .field_u64("dest", u64::from(dest.index()))
                    .field_u64("length", u64::from(length));
            }
            TraceEvent::Refused { cycle, src, class } => {
                obj.field_str("event", "refused")
                    .field_u64("cycle", cycle)
                    .field_u64("src", u64::from(src.index()))
                    .field_u64("class", u64::from(class));
            }
            TraceEvent::InjectionStarted { cycle, msg } => {
                obj.field_str("event", "injection_started")
                    .field_u64("cycle", cycle)
                    .field_u64("msg", u64::from(msg.index()));
            }
            TraceEvent::HopTaken {
                cycle,
                msg,
                from,
                direction,
                vc_class,
            } => {
                obj.field_str("event", "hop")
                    .field_u64("cycle", cycle)
                    .field_u64("msg", u64::from(msg.index()))
                    .field_u64("from", u64::from(from.index()))
                    .field_u64("direction", direction.index() as u64)
                    .field_u64("vc_class", u64::from(vc_class));
            }
            TraceEvent::FlitDelivered { cycle, msg, kind } => {
                obj.field_str("event", "flit_delivered")
                    .field_u64("cycle", cycle)
                    .field_u64("msg", u64::from(msg.index()))
                    .field_str(
                        "kind",
                        match kind {
                            FlitKind::Head => "head",
                            FlitKind::Body => "body",
                            FlitKind::Tail => "tail",
                            FlitKind::Single => "single",
                        },
                    );
            }
            TraceEvent::Delivered {
                cycle,
                msg,
                latency,
            } => {
                obj.field_str("event", "delivered")
                    .field_u64("cycle", cycle)
                    .field_u64("msg", u64::from(msg.index()))
                    .field_u64("latency", latency);
            }
        }
        obj.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let e = TraceEvent::Refused {
            cycle: 7,
            src: NodeId::new(1),
            class: 2,
        };
        assert_eq!(e.cycle(), 7);
        assert_eq!(e.msg(), None);
        let e = TraceEvent::Delivered {
            cycle: 9,
            msg: MessageId(3),
            latency: 20,
        };
        assert_eq!(e.cycle(), 9);
        assert_eq!(e.msg(), Some(MessageId(3)));
    }

    #[test]
    fn json_round_trip_all_variants() {
        let events = [
            TraceEvent::Generated {
                cycle: 1,
                msg: MessageId(9),
                src: NodeId::new(3),
                dest: NodeId::new(12),
                length: 16,
            },
            TraceEvent::Refused {
                cycle: 2,
                src: NodeId::new(4),
                class: 1,
            },
            TraceEvent::InjectionStarted {
                cycle: 3,
                msg: MessageId(9),
            },
            TraceEvent::HopTaken {
                cycle: 4,
                msg: MessageId(9),
                from: NodeId::new(3),
                direction: Direction::from_index(2),
                vc_class: 1,
            },
            TraceEvent::FlitDelivered {
                cycle: 5,
                msg: MessageId(9),
                kind: FlitKind::Tail,
            },
            TraceEvent::Delivered {
                cycle: 6,
                msg: MessageId(9),
                latency: 21,
            },
        ];
        for event in events {
            let parsed = wormsim_observe::json::from_str(&event.to_json()).unwrap();
            assert_eq!(TraceEvent::from_json(&parsed).unwrap(), event, "{event:?}");
        }
    }

    #[test]
    fn from_json_rejects_unknown_tags() {
        let v =
            wormsim_observe::json::from_str("{\"type\":\"trace\",\"cycle\":0,\"event\":\"warp\"}")
                .unwrap();
        assert!(TraceEvent::from_json(&v).is_err());
        let v = wormsim_observe::json::from_str("{\"type\":\"sample\"}").unwrap();
        assert!(TraceEvent::from_json(&v).is_err());
    }
}

//! Flits: the fixed-size units of wormhole switching.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A message identifier, valid while the message is in flight.
///
/// Ids index a slab inside the [`Network`](crate::Network) and are recycled
/// after delivery.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MessageId(pub(crate) u32);

impl MessageId {
    /// The raw slab index.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// The position of a flit within its message.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlitKind {
    /// First flit; carries the routing information.
    Head,
    /// Interior flit.
    Body,
    /// Last flit; releases channels as it passes.
    Tail,
    /// A single-flit message: head and tail at once.
    Single,
}

impl FlitKind {
    /// Whether this flit carries the routing header.
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::Single)
    }

    /// Whether this flit ends its message.
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::Single)
    }
}

/// One flit in a buffer or on a wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flit {
    /// The message this flit belongs to.
    pub msg: MessageId,
    /// Head/body/tail position.
    pub kind: FlitKind,
}

impl Flit {
    /// Builds the flit sequence of a message with `length` flits.
    ///
    /// # Panics
    ///
    /// Panics if `length` is zero.
    pub fn sequence(msg: MessageId, length: u32) -> impl Iterator<Item = Flit> {
        assert!(length > 0, "messages have at least one flit");
        (0..length).map(move |i| Flit {
            msg,
            kind: if length == 1 {
                FlitKind::Single
            } else if i == 0 {
                FlitKind::Head
            } else if i == length - 1 {
                FlitKind::Tail
            } else {
                FlitKind::Body
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_structure() {
        let flits: Vec<Flit> = Flit::sequence(MessageId(3), 4).collect();
        assert_eq!(flits.len(), 4);
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert_eq!(flits[1].kind, FlitKind::Body);
        assert_eq!(flits[2].kind, FlitKind::Body);
        assert_eq!(flits[3].kind, FlitKind::Tail);
        assert!(flits.iter().all(|f| f.msg == MessageId(3)));
    }

    #[test]
    fn single_flit_message() {
        let flits: Vec<Flit> = Flit::sequence(MessageId(0), 1).collect();
        assert_eq!(flits.len(), 1);
        assert_eq!(flits[0].kind, FlitKind::Single);
        assert!(flits[0].kind.is_head() && flits[0].kind.is_tail());
    }

    #[test]
    fn head_tail_predicates() {
        assert!(FlitKind::Head.is_head());
        assert!(!FlitKind::Head.is_tail());
        assert!(FlitKind::Tail.is_tail());
        assert!(!FlitKind::Body.is_head());
    }
}

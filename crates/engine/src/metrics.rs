//! Raw simulation counters and per-message delivery records.

use serde::{Deserialize, Serialize};

/// One delivered message, reported when its tail flit leaves the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliveredMessage {
    /// The message's hop class: the minimal source–destination distance.
    pub hop_class: u16,
    /// End-to-end latency in cycles, from generation to tail ejection.
    pub latency: u64,
    /// Cycles spent waiting in the source queue before the head left.
    pub source_wait: u64,
    /// Message length in flits.
    pub length: u32,
    /// The cycle the tail was delivered.
    pub delivered_at: u64,
}

/// Aggregate counters, resettable between sampling periods.
///
/// Counter semantics: `generated` counts accepted messages; `refused`
/// counts messages dropped by congestion control; `delivered` counts
/// messages whose tail left the network; `flit_hops` counts flit transfers
/// over *network* physical channels (injection and ejection excluded), the
/// numerator of measured channel utilization.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Metrics {
    /// Messages accepted into source queues.
    pub generated: u64,
    /// Messages refused by the input-buffer-limit congestion control.
    pub refused: u64,
    /// Messages fully delivered.
    pub delivered: u64,
    /// Flit transfers across network physical channels.
    pub flit_hops: u64,
    /// Flits that left source queues into the network.
    pub flits_injected: u64,
    /// Flits delivered at destinations.
    pub flits_ejected: u64,
    /// Cycles covered by these counters (since the last reset).
    pub cycles: u64,
    /// Would-be messages dropped at generation because no live path to the
    /// destination existed under the active fault mask.
    pub unroutable: u64,
    /// Messages killed in flight by a fault (their flits are dropped).
    pub messages_aborted: u64,
    /// Flits discarded by fault aborts (buffered and still-queued flits).
    pub flits_dropped: u64,
    /// Flit transfers per virtual-channel *class* (summed over channels),
    /// indexed by class. Shows the load-balancing behavior the paper
    /// discusses for nhop versus nbc.
    pub class_flits: Vec<u64>,
    /// Flit transfers per physical channel (only when
    /// `track_channel_load` is set), indexed by channel id.
    pub channel_flits: Option<Vec<u64>>,
}

impl Metrics {
    pub(crate) fn new(num_classes: usize, track_channels: bool, num_channels: usize) -> Self {
        Metrics {
            class_flits: vec![0; num_classes],
            channel_flits: track_channels.then(|| vec![0; num_channels]),
            ..Metrics::default()
        }
    }

    /// Zeroes every counter (buffer/network state is untouched). The
    /// `class_flits`/`channel_flits` vectors are zeroed in place, so a
    /// sweep's per-sample resets never reallocate.
    pub fn reset(&mut self) {
        self.generated = 0;
        self.refused = 0;
        self.delivered = 0;
        self.flit_hops = 0;
        self.flits_injected = 0;
        self.flits_ejected = 0;
        self.cycles = 0;
        self.unroutable = 0;
        self.messages_aborted = 0;
        self.flits_dropped = 0;
        self.class_flits.fill(0);
        if let Some(channels) = self.channel_flits.as_mut() {
            channels.fill(0);
        }
    }

    /// Measured channel utilization over the counted window:
    /// `flit_hops / (channels × cycles)`.
    ///
    /// Returns 0 if no cycles have been counted.
    pub fn channel_utilization(&self, num_channels: u64) -> f64 {
        if self.cycles == 0 || num_channels == 0 {
            0.0
        } else {
            self.flit_hops as f64 / (num_channels as f64 * self.cycles as f64)
        }
    }

    /// Delivered messages per node per cycle.
    pub fn delivery_rate(&self, num_nodes: u64) -> f64 {
        if self.cycles == 0 || num_nodes == 0 {
            0.0
        } else {
            self.delivered as f64 / (num_nodes as f64 * self.cycles as f64)
        }
    }

    /// Accepted messages per node per cycle (the offered rate actually
    /// admitted past congestion control).
    pub fn acceptance_rate(&self, num_nodes: u64) -> f64 {
        if self.cycles == 0 || num_nodes == 0 {
            0.0
        } else {
            self.generated as f64 / (num_nodes as f64 * self.cycles as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_preserves_shapes() {
        let mut m = Metrics::new(4, true, 64);
        m.generated = 10;
        m.class_flits[2] = 5;
        m.channel_flits.as_mut().unwrap()[3] = 7;
        m.cycles = 100;
        m.reset();
        assert_eq!(m.generated, 0);
        assert_eq!(m.class_flits, vec![0; 4]);
        assert_eq!(m.channel_flits.as_ref().unwrap().len(), 64);
        assert_eq!(m.cycles, 0);
    }

    #[test]
    fn reset_reuses_allocations() {
        let mut m = Metrics::new(4, true, 64);
        let class_ptr = m.class_flits.as_ptr();
        let channel_ptr = m.channel_flits.as_ref().unwrap().as_ptr();
        m.class_flits[1] = 9;
        m.channel_flits.as_mut().unwrap()[5] = 3;
        m.reset();
        assert_eq!(m.class_flits.as_ptr(), class_ptr);
        assert_eq!(m.channel_flits.as_ref().unwrap().as_ptr(), channel_ptr);
    }

    #[test]
    fn utilization_math() {
        let mut m = Metrics::new(1, false, 0);
        m.flit_hops = 500;
        m.cycles = 100;
        assert!((m.channel_utilization(10) - 0.5).abs() < 1e-12);
        assert_eq!(Metrics::default().channel_utilization(10), 0.0);
    }

    #[test]
    fn rates() {
        let mut m = Metrics::new(1, false, 0);
        m.delivered = 100;
        m.generated = 120;
        m.cycles = 1000;
        assert!((m.delivery_rate(10) - 0.01).abs() < 1e-12);
        assert!((m.acceptance_rate(10) - 0.012).abs() < 1e-12);
    }

    /// The offline serde shim's derives must emit real marker-trait impls,
    /// not just swallow the annotation, or bounds like `T: Serialize` stop
    /// compiling for downstream consumers.
    #[test]
    fn derives_implement_marker_traits() {
        fn serializable<T: serde::Serialize>() {}
        fn deserializable<T: for<'de> serde::Deserialize<'de>>() {}
        serializable::<Metrics>();
        serializable::<DeliveredMessage>();
        deserializable::<Metrics>();
        deserializable::<DeliveredMessage>();
    }
}

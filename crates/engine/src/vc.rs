//! Virtual-channel state: input buffers.
//!
//! The sending side (output-VC reservations and credits) lives directly in
//! [`Network`](crate::Network) as parallel `out_owner` / `out_credits`
//! arrays, keeping the switch-allocation hot loop in compact memory.

use crate::{Flit, MessageId};
use std::collections::VecDeque;

/// Where a routed input VC sends its flits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RouteTarget {
    /// Forward on the given output direction and physical VC index.
    Link {
        /// Packed direction index (`Direction::index()`).
        dir: u8,
        /// Physical VC index on that channel (`class * replicas + replica`).
        vc: u16,
    },
    /// Deliver locally: this node is the destination.
    Eject,
}

/// The receiving side of one virtual channel: a flit FIFO plus the route of
/// the message currently at its front.
#[derive(Clone, Debug, Default)]
pub(crate) struct InputVc {
    /// Buffered flits, front = oldest.
    pub buffer: VecDeque<Flit>,
    /// Route of the message whose head has been routed; `None` while the
    /// front flit is an unrouted head (or the buffer is empty).
    pub route: Option<RouteTarget>,
    /// The message that owns `route`. Tracked so fault handling can find
    /// and revoke a message's reservations even after its flits have
    /// drained past this buffer (the route outlives the flits until the
    /// tail passes).
    pub route_msg: Option<MessageId>,
    /// Number of tail/single flits currently in the buffer. Used by
    /// store-and-forward to detect "message fully arrived".
    pub tails: u16,
}

impl InputVc {
    /// Pushes an arriving flit.
    pub fn push(&mut self, flit: Flit) {
        if flit.kind.is_tail() {
            self.tails += 1;
        }
        self.buffer.push_back(flit);
    }

    /// Pops the front flit. Clears the route when the tail leaves.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    pub fn pop(&mut self) -> Flit {
        let flit = self.buffer.pop_front().expect("pop from non-empty buffer");
        if flit.kind.is_tail() {
            self.tails -= 1;
            self.route = None;
            self.route_msg = None;
        }
        flit
    }

    /// Removes every flit of `msg` from the buffer (fault handling).
    ///
    /// Returns the number of flits removed and whether the *front* flit
    /// belonged to `msg` (in which case the caller must re-examine the new
    /// front). Does not touch `route`/`route_msg` — the caller revokes
    /// those explicitly.
    pub fn purge_message(&mut self, msg: MessageId) -> (u32, bool) {
        let front_was_msg = self.buffer.front().is_some_and(|f| f.msg == msg);
        let before = self.buffer.len();
        let mut tails_removed = 0u16;
        self.buffer.retain(|f| {
            if f.msg == msg {
                if f.kind.is_tail() {
                    tails_removed += 1;
                }
                false
            } else {
                true
            }
        });
        self.tails -= tails_removed;
        ((before - self.buffer.len()) as u32, front_was_msg)
    }

    /// The flit at the front, if any.
    pub fn front(&self) -> Option<Flit> {
        self.buffer.front().copied()
    }

    /// Whether the message at the front is fully buffered (its tail is in
    /// the buffer) — the store-and-forward forwarding condition.
    pub fn front_message_complete(&self) -> bool {
        self.tails > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlitKind, MessageId};

    #[test]
    fn tails_track_and_route_clears() {
        let mut vc = InputVc::default();
        for flit in Flit::sequence(MessageId(1), 3) {
            vc.push(flit);
        }
        assert_eq!(vc.tails, 1);
        assert!(vc.front_message_complete());
        vc.route = Some(RouteTarget::Eject);
        assert_eq!(vc.pop().kind, FlitKind::Head);
        assert!(vc.route.is_some(), "route persists until the tail leaves");
        vc.pop();
        assert_eq!(vc.pop().kind, FlitKind::Tail);
        assert_eq!(vc.route, None);
        assert_eq!(vc.tails, 0);
    }

    #[test]
    fn partial_message_is_incomplete() {
        let mut vc = InputVc::default();
        let flits: Vec<Flit> = Flit::sequence(MessageId(0), 4).collect();
        vc.push(flits[0]);
        vc.push(flits[1]);
        assert!(!vc.front_message_complete());
        vc.push(flits[2]);
        vc.push(flits[3]);
        assert!(vc.front_message_complete());
    }

    #[test]
    fn purge_removes_only_the_doomed_message() {
        let mut vc = InputVc::default();
        for flit in Flit::sequence(MessageId(1), 2) {
            vc.push(flit);
        }
        for flit in Flit::sequence(MessageId(2), 3) {
            vc.push(flit);
        }
        assert_eq!(vc.tails, 2);
        let (removed, front_was) = vc.purge_message(MessageId(1));
        assert_eq!(removed, 2);
        assert!(front_was);
        assert_eq!(vc.tails, 1);
        assert_eq!(vc.buffer.len(), 3);
        assert!(vc.front().unwrap().kind.is_head());
        let (removed, front_was) = vc.purge_message(MessageId(7));
        assert_eq!((removed, front_was), (0, false));
    }

    #[test]
    fn two_messages_in_one_buffer() {
        // A tail followed by the next message's head: after the tail pops,
        // the new head is at the front with no route.
        let mut vc = InputVc::default();
        vc.push(Flit {
            msg: MessageId(1),
            kind: FlitKind::Tail,
        });
        vc.push(Flit {
            msg: MessageId(2),
            kind: FlitKind::Head,
        });
        vc.route = Some(RouteTarget::Eject);
        vc.pop();
        assert_eq!(vc.route, None);
        assert_eq!(vc.front().unwrap().msg, MessageId(2));
        assert!(vc.front().unwrap().kind.is_head());
    }
}

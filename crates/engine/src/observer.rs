//! Unified observability entry point: [`ObserverHandle`].
//!
//! [`Network::observer`](crate::Network::observer) replaces the old sprawl
//! of per-feature setters (`enable_tracing`, `set_event_sink`,
//! `enable_sampling`, …) with one builder-style handle:
//!
//! ```
//! use wormsim_engine::{NetworkBuilder, Switching};
//! use wormsim_engine::observe::{JsonlSink, Sample};
//! use wormsim_topology::Topology;
//! use wormsim_routing::AlgorithmKind;
//!
//! let mut net = NetworkBuilder::new(Topology::torus(&[4, 4]), AlgorithmKind::Ecube)
//!     .build()
//!     .unwrap();
//! net.observer()
//!     .trace_ring_with_capacity(64)
//!     .sample(250, Box::new(JsonlSink::new(Vec::new())));
//! net.run(500);
//! let samples = net.observer().sample_off().expect("sampler was on");
//! # let _ = samples;
//! ```

use crate::network::Network;
use crate::trace::TraceEvent;
use wormsim_observe::{EventSink, MetricsRegistry, Sample};

/// A short-lived, builder-style handle over one [`Network`]'s
/// observability state (tracing and time-series sampling).
///
/// Obtained from [`Network::observer`]; configuration methods consume and
/// return the handle so calls chain, while the teardown methods
/// ([`take_trace_sink`](Self::take_trace_sink),
/// [`sample_off`](Self::sample_off)) consume it and hand back the sink.
pub struct ObserverHandle<'a> {
    net: &'a mut Network,
}

impl<'a> ObserverHandle<'a> {
    pub(crate) fn new(net: &'a mut Network) -> Self {
        ObserverHandle { net }
    }

    /// Buffers message-lifecycle trace events in a bounded in-memory ring
    /// of [`DEFAULT_TRACE_CAPACITY`](crate::DEFAULT_TRACE_CAPACITY)
    /// events; read them back with
    /// [`Network::drain_trace`](Network::drain_trace). An already
    /// installed ring (and its contents) is kept.
    pub fn trace_ring(self) -> Self {
        self.net.observe_trace_ring();
        self
    }

    /// Like [`trace_ring`](Self::trace_ring) but with an explicit ring
    /// capacity (clamped to at least 1). Replaces any installed sink.
    pub fn trace_ring_with_capacity(self, capacity: usize) -> Self {
        self.net.observe_trace_ring_with_capacity(capacity);
        self
    }

    /// Routes trace events into a caller-supplied sink — typically a
    /// [`JsonlSink`](wormsim_observe::JsonlSink) when the full event
    /// stream matters. Replaces any installed ring.
    pub fn trace_into(self, sink: Box<dyn EventSink<TraceEvent>>) -> Self {
        self.net.observe_set_event_sink(sink);
        self
    }

    /// Turns tracing off and discards any buffered events.
    pub fn trace_off(self) -> Self {
        self.net.observe_disable_tracing();
        self
    }

    /// Removes and returns a sink installed via
    /// [`trace_into`](Self::trace_into), turning tracing off. Returns
    /// `None` (leaving the state untouched) when tracing is off or backed
    /// by the built-in ring.
    pub fn take_trace_sink(self) -> Option<Box<dyn EventSink<TraceEvent>>> {
        self.net.observe_take_event_sink()
    }

    /// Starts emitting one [`Sample`] into `sink` every `every` cycles
    /// (clamped to at least 1), replacing any previous sampler. Each
    /// sample carries the counter deltas for its window plus an
    /// instantaneous snapshot of queue depths and VC occupancy.
    pub fn sample(self, every: u64, sink: Box<dyn EventSink<Sample>>) -> Self {
        self.net.observe_enable_sampling(every, sink);
        self
    }

    /// Stops sampling, returning the sink (so callers can flush it or
    /// read its drop counter). `None` if sampling was off.
    pub fn sample_off(self) -> Option<Box<dyn EventSink<Sample>>> {
        self.net.observe_disable_sampling()
    }

    /// Installs a deep-telemetry [`MetricsRegistry`] sized for this
    /// network: per-channel/per-VC-class counters, a latency histogram,
    /// and the per-phase cycle profiler. Read it back with
    /// [`Network::metrics_registry`], or take it with
    /// [`metrics_off`](Self::metrics_off). An already installed registry
    /// (and its counts) is kept.
    pub fn metrics_on(self) -> Self {
        self.net.observe_enable_metrics();
        self
    }

    /// Uninstalls and returns the registry; `None` if metrics were off.
    pub fn metrics_off(self) -> Option<Box<MetricsRegistry>> {
        self.net.observe_disable_metrics()
    }
}

//! Simulator configuration and the [`NetworkBuilder`].

use crate::{EngineError, Network};
use serde::{Deserialize, Serialize};
use wormsim_faults::FaultPlan;
use wormsim_routing::AlgorithmKind;
use wormsim_topology::Topology;
use wormsim_traffic::{ArrivalProcess, MessageLength, TrafficConfig};

/// The switching discipline of the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Switching {
    /// Wormhole switching: per-VC buffers hold `buffer_depth` flits; a
    /// blocked message keeps its flits spread over the channels it holds.
    Wormhole {
        /// Flits of buffering per virtual channel (≥ 1; 2 sustains full
        /// link rate with single-cycle credit turnaround).
        buffer_depth: u32,
    },
    /// Virtual cut-through (Kermani & Kleinrock): buffers hold a whole
    /// message, so a blocked message accumulates at one node instead of
    /// holding a chain of channels.
    VirtualCutThrough,
    /// Store-and-forward: like cut-through buffers, but a message is only
    /// forwarded (and only allocates its next channel) once it has fully
    /// arrived at a node.
    StoreAndForward,
}

impl Switching {
    /// Conventional wormhole switching with 2-flit VC buffers.
    pub const fn wormhole() -> Self {
        Switching::Wormhole { buffer_depth: 2 }
    }
}

/// How a routed head picks among several free, permitted virtual channels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionPolicy {
    /// The free VC with the most downstream credits — "likely to choose the
    /// least congested one" (the paper's assumption for nbc).
    MostCredits,
    /// The first free VC in candidate order (dimension 0 first).
    FirstFree,
    /// Uniformly random among the free permitted VCs.
    Random,
}

/// How arriving flits leave the network at their destination.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EjectionModel {
    /// Every input VC can deliver one flit per cycle (multiple delivery
    /// channels; the paper's hotspot throughputs imply this model).
    PerVc,
    /// A single ejection channel per node delivers one flit per cycle.
    SingleChannel,
}

/// Full simulator configuration. Use [`NetworkBuilder`] to construct one.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// The network under test.
    pub topology: Topology,
    /// Which routing algorithm routes messages.
    pub algorithm: AlgorithmKind,
    /// Switching discipline.
    pub switching: Switching,
    /// Physical virtual channels provisioned per routing class (Dally-style
    /// virtual-channel flow control when > 1).
    pub vc_replicas: u32,
    /// Spatial traffic pattern.
    pub traffic: TrafficConfig,
    /// Message generation process per node.
    pub arrival: ArrivalProcess,
    /// Message length distribution.
    pub length: MessageLength,
    /// Input-buffer-limit congestion control: max un-injected messages per
    /// message class per node; `None` disables refusal.
    pub congestion_limit: Option<u32>,
    /// VC selection policy for adaptive candidates.
    pub selection: SelectionPolicy,
    /// Ejection bandwidth model.
    pub ejection: EjectionModel,
    /// Flits per cycle a node may inject (bandwidth of the
    /// processor-router port).
    pub injection_bandwidth: u32,
    /// RNG seed; equal seeds give bit-identical runs.
    pub seed: u64,
    /// Cycles without forward progress (while flits are in flight) before
    /// the watchdog reports a deadlock.
    pub watchdog_cycles: u64,
    /// Record per-physical-channel flit counts (for utilization maps).
    pub track_channel_load: bool,
    /// Link/node failures injected into the run; `None` (or an empty plan)
    /// simulates a healthy network with zero overhead on the hot path.
    pub faults: Option<FaultPlan>,
    /// Livelock guard: flag any in-flight message that has taken more than
    /// this many hops. `None` disables the hop check.
    pub hop_budget: Option<u32>,
    /// Starvation guard: flag any live message older than this many cycles.
    /// `None` disables the age check.
    pub age_budget: Option<u64>,
    /// When a fault leaves a message with no live minimal candidate,
    /// adaptive algorithms may mis-route (take a non-minimal live hop)
    /// instead of waiting forever. Non-adaptive algorithms never mis-route.
    pub misroute_on_fault: bool,
}

/// Builder for [`Network`].
///
/// Defaults mirror the paper's setup: wormhole switching with 2-flit VC
/// buffers, one VC per class, uniform traffic, 16-flit messages, no
/// arrivals (drive manually or set [`arrival`](Self::arrival)),
/// most-credits selection, per-VC ejection, congestion limit 1.
///
/// # Example
///
/// ```
/// use wormsim_engine::NetworkBuilder;
/// use wormsim_topology::Topology;
/// use wormsim_routing::AlgorithmKind;
///
/// let net = NetworkBuilder::new(Topology::torus(&[4, 4]), AlgorithmKind::Ecube)
///     .seed(7)
///     .build()?;
/// assert_eq!(net.cycle(), 0);
/// # Ok::<(), wormsim_engine::EngineError>(())
/// ```
#[derive(Clone, Debug)]
pub struct NetworkBuilder {
    config: SimConfig,
}

impl NetworkBuilder {
    /// Starts a builder for `topology` routed by `algorithm`.
    pub fn new(topology: Topology, algorithm: AlgorithmKind) -> Self {
        NetworkBuilder {
            config: SimConfig {
                topology,
                algorithm,
                switching: Switching::wormhole(),
                vc_replicas: 1,
                traffic: TrafficConfig::Uniform,
                arrival: ArrivalProcess::Off,
                length: MessageLength::Fixed { flits: 16 },
                congestion_limit: Some(1),
                selection: SelectionPolicy::MostCredits,
                ejection: EjectionModel::PerVc,
                injection_bandwidth: 1,
                seed: 0,
                watchdog_cycles: 20_000,
                track_channel_load: false,
                faults: None,
                hop_budget: None,
                age_budget: None,
                misroute_on_fault: true,
            },
        }
    }

    /// Sets the switching discipline.
    pub fn switching(mut self, switching: Switching) -> Self {
        self.config.switching = switching;
        self
    }

    /// Sets the number of physical VCs per routing class.
    pub fn vc_replicas(mut self, replicas: u32) -> Self {
        self.config.vc_replicas = replicas;
        self
    }

    /// Sets the traffic pattern.
    pub fn traffic(mut self, traffic: TrafficConfig) -> Self {
        self.config.traffic = traffic;
        self
    }

    /// Sets the arrival process.
    pub fn arrival(mut self, arrival: ArrivalProcess) -> Self {
        self.config.arrival = arrival;
        self
    }

    /// Sets the message length distribution.
    pub fn message_length(mut self, length: MessageLength) -> Self {
        self.config.length = length;
        self
    }

    /// Sets (or disables, with `None`) the congestion-control limit.
    pub fn congestion_limit(mut self, limit: Option<u32>) -> Self {
        self.config.congestion_limit = limit;
        self
    }

    /// Sets the VC selection policy.
    pub fn selection(mut self, selection: SelectionPolicy) -> Self {
        self.config.selection = selection;
        self
    }

    /// Sets the ejection model.
    pub fn ejection(mut self, ejection: EjectionModel) -> Self {
        self.config.ejection = ejection;
        self
    }

    /// Sets the injection bandwidth in flits per cycle.
    pub fn injection_bandwidth(mut self, flits_per_cycle: u32) -> Self {
        self.config.injection_bandwidth = flits_per_cycle;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the watchdog threshold in cycles.
    pub fn watchdog_cycles(mut self, cycles: u64) -> Self {
        self.config.watchdog_cycles = cycles;
        self
    }

    /// Enables per-channel load recording.
    pub fn track_channel_load(mut self, track: bool) -> Self {
        self.config.track_channel_load = track;
        self
    }

    /// Injects a fault plan into the run.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.config.faults = Some(plan);
        self
    }

    /// Sets (or disables, with `None`) the livelock hop budget.
    pub fn hop_budget(mut self, hops: Option<u32>) -> Self {
        self.config.hop_budget = hops;
        self
    }

    /// Sets (or disables, with `None`) the starvation age budget in cycles.
    pub fn age_budget(mut self, cycles: Option<u64>) -> Self {
        self.config.age_budget = cycles;
        self
    }

    /// Enables or disables mis-routing around faults (default: enabled).
    pub fn misroute_on_fault(mut self, misroute: bool) -> Self {
        self.config.misroute_on_fault = misroute;
        self
    }

    /// Finishes the configuration.
    pub fn into_config(self) -> SimConfig {
        self.config
    }

    /// Validates the configuration and assembles the network.
    ///
    /// # Errors
    ///
    /// Returns an [`EngineError`] if any parameter is invalid or the
    /// algorithm/traffic constructors reject the topology.
    pub fn build(self) -> Result<Network, EngineError> {
        Network::new(self.config)
    }
}

impl SimConfig {
    pub(crate) fn validate(&self) -> Result<(), EngineError> {
        if let Switching::Wormhole { buffer_depth: 0 } = self.switching {
            return Err(EngineError::ZeroBufferDepth);
        }
        if self.vc_replicas == 0 {
            return Err(EngineError::ZeroReplicas);
        }
        if self.injection_bandwidth == 0 {
            return Err(EngineError::ZeroInjectionBandwidth);
        }
        if self.congestion_limit == Some(0) {
            return Err(EngineError::ZeroCongestionLimit);
        }
        if let Some(plan) = &self.faults {
            plan.validate(&self.topology)?;
        }
        Ok(())
    }

    /// The per-VC buffer capacity in flits implied by the switching mode.
    pub fn buffer_capacity(&self) -> u32 {
        match self.switching {
            Switching::Wormhole { buffer_depth } => buffer_depth,
            Switching::VirtualCutThrough | Switching::StoreAndForward => self.length.max(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_paper() {
        let cfg =
            NetworkBuilder::new(Topology::torus(&[16, 16]), AlgorithmKind::Ecube).into_config();
        assert_eq!(cfg.switching, Switching::Wormhole { buffer_depth: 2 });
        assert_eq!(cfg.length, MessageLength::Fixed { flits: 16 });
        assert_eq!(cfg.vc_replicas, 1);
        assert_eq!(cfg.injection_bandwidth, 1);
    }

    #[test]
    fn validation_rejects_degenerate_values() {
        let base = NetworkBuilder::new(Topology::torus(&[4, 4]), AlgorithmKind::Ecube);
        assert_eq!(
            base.clone()
                .switching(Switching::Wormhole { buffer_depth: 0 })
                .build()
                .unwrap_err(),
            EngineError::ZeroBufferDepth
        );
        assert_eq!(
            base.clone().vc_replicas(0).build().unwrap_err(),
            EngineError::ZeroReplicas
        );
        assert_eq!(
            base.clone().injection_bandwidth(0).build().unwrap_err(),
            EngineError::ZeroInjectionBandwidth
        );
        assert_eq!(
            base.clone().congestion_limit(Some(0)).build().unwrap_err(),
            EngineError::ZeroCongestionLimit
        );
        assert!(base.build().is_ok());
    }

    #[test]
    fn validation_rejects_bad_fault_plans() {
        use wormsim_topology::NodeId;
        let mut plan = FaultPlan::new();
        plan.push_dead_node(NodeId::new(999));
        let err = NetworkBuilder::new(Topology::torus(&[4, 4]), AlgorithmKind::Ecube)
            .faults(plan)
            .build()
            .unwrap_err();
        assert!(matches!(err, EngineError::Faults(_)), "{err:?}");
    }

    #[test]
    fn buffer_capacity_follows_switching() {
        let mut cfg =
            NetworkBuilder::new(Topology::torus(&[4, 4]), AlgorithmKind::Ecube).into_config();
        assert_eq!(cfg.buffer_capacity(), 2);
        cfg.switching = Switching::VirtualCutThrough;
        assert_eq!(cfg.buffer_capacity(), 16);
        cfg.switching = Switching::StoreAndForward;
        cfg.length = MessageLength::Bimodal {
            short: 15,
            long: 31,
            long_fraction: 0.5,
        };
        assert_eq!(cfg.buffer_capacity(), 31);
    }
}

//! Cooperative cancellation for long simulations.
//!
//! A [`CancelToken`] is a shared flag an orchestrator trips (typically from
//! a SIGINT handler or a shutdown path) to ask in-flight simulations to
//! stop at the next safe point. The engine checks it on a stride inside
//! [`Network::run`](crate::Network::run) and
//! [`Network::run_until_empty`](crate::Network::run_until_empty), so a
//! cancelled run returns within a bounded number of cycles instead of
//! finishing a multi-minute measurement nobody will read. Checking the
//! token never mutates simulation state: two runs with the same seed are
//! bit-identical up to the cycle where one of them is cut short.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A clonable, thread-safe cancellation flag.
///
/// Clones share the flag: cancelling any clone cancels them all. The token
/// is latching — once cancelled it stays cancelled.
///
/// # Example
///
/// ```
/// use wormsim_engine::CancelToken;
///
/// let token = CancelToken::new();
/// let worker = token.clone();
/// assert!(!worker.is_cancelled());
/// token.cancel();
/// assert!(worker.is_cancelled());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the flag. Safe to call from multiple threads; idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether the flag has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Cycles between cancellation checks in the engine's run loops: frequent
/// enough that a cancelled run stops within microseconds of simulated
/// work, rare enough to stay invisible in the hot path.
pub(crate) const CANCEL_CHECK_STRIDE: u64 = 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
        // Latching: cancelling again changes nothing.
        a.cancel();
        assert!(b.is_cancelled());
    }
}

//! Cooperative cancellation for long simulations.
//!
//! A [`CancelToken`] is a shared flag an orchestrator trips (typically from
//! a SIGINT handler or a shutdown path) to ask in-flight simulations to
//! stop at the next safe point. The engine checks it on a stride inside
//! [`Network::run`](crate::Network::run) and
//! [`Network::run_until_empty`](crate::Network::run_until_empty), so a
//! cancelled run returns within a bounded number of cycles instead of
//! finishing a multi-minute measurement nobody will read. Checking the
//! token never mutates simulation state: two runs with the same seed are
//! bit-identical up to the cycle where one of them is cut short.
//!
//! The token doubles as a **heartbeat**: on the same stride the engine
//! publishes its current cycle through [`CancelToken::beat`], so whoever
//! holds a clone can distinguish a simulation that is *slow* (heartbeat
//! advancing) from one that is *hung* (heartbeat frozen). A worker serving
//! remote sweep points reports this counter from `/status`, and the sweep
//! supervisor writes off executors whose heartbeat stops. Like the
//! cancellation check, beating only touches the shared counter — it never
//! feeds back into simulation state.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug, Default)]
struct Flags {
    cancelled: AtomicBool,
    heartbeat: AtomicU64,
}

/// A clonable, thread-safe cancellation flag with a progress heartbeat.
///
/// Clones share the flag: cancelling any clone cancels them all. The token
/// is latching — once cancelled it stays cancelled.
///
/// # Example
///
/// ```
/// use wormsim_engine::CancelToken;
///
/// let token = CancelToken::new();
/// let worker = token.clone();
/// assert!(!worker.is_cancelled());
/// token.cancel();
/// assert!(worker.is_cancelled());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<Flags>);

impl CancelToken {
    /// A fresh, un-cancelled token with a zero heartbeat.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the flag. Safe to call from multiple threads; idempotent.
    pub fn cancel(&self) {
        self.0.cancelled.store(true, Ordering::Release);
    }

    /// Whether the flag has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.0.cancelled.load(Ordering::Acquire)
    }

    /// Publishes simulation progress: monotone non-decreasing under the
    /// engine's use (it reports the current cycle, offset by one so the
    /// very first beat is distinguishable from "never ran").
    pub fn beat(&self, cycle: u64) {
        self.0
            .heartbeat
            .store(cycle.saturating_add(1), Ordering::Release);
    }

    /// The last published heartbeat; `0` means the simulation has not
    /// reached its first beat yet.
    pub fn heartbeat(&self) -> u64 {
        self.0.heartbeat.load(Ordering::Acquire)
    }
}

/// Cycles between cancellation checks in the engine's run loops: frequent
/// enough that a cancelled run stops within microseconds of simulated
/// work, rare enough to stay invisible in the hot path.
pub(crate) const CANCEL_CHECK_STRIDE: u64 = 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
        // Latching: cancelling again changes nothing.
        a.cancel();
        assert!(b.is_cancelled());
    }

    #[test]
    fn clones_share_the_heartbeat() {
        let a = CancelToken::new();
        let b = a.clone();
        assert_eq!(b.heartbeat(), 0, "fresh token has no heartbeat");
        a.beat(0);
        assert_eq!(b.heartbeat(), 1, "cycle 0 beats as 1, not 0");
        a.beat(4096);
        assert_eq!(b.heartbeat(), 4097);
    }
}

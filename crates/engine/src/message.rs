//! In-flight message bookkeeping.

use crate::MessageId;
use wormsim_routing::MessageRouteState;
use wormsim_topology::NodeId;

/// Everything the simulator tracks about one in-flight message.
#[derive(Clone, Debug)]
pub(crate) struct MessageRec {
    /// The routing state carried by the head flit.
    pub route: MessageRouteState,
    /// Message length in flits.
    pub length: u32,
    /// Cycle the message was generated (entered the source queue).
    pub generated: u64,
    /// Cycle the head flit first left the source node, once known.
    pub injected: Option<u64>,
    /// The congestion-control class at the source node.
    pub injection_class: u32,
    /// Source node (for releasing the congestion-control slot).
    pub src: NodeId,
}

/// A slab of [`MessageRec`]s with id recycling.
#[derive(Debug, Default)]
pub(crate) struct MessageSlab {
    entries: Vec<Option<MessageRec>>,
    free: Vec<u32>,
    live: usize,
}

impl MessageSlab {
    pub fn insert(&mut self, rec: MessageRec) -> MessageId {
        self.live += 1;
        if let Some(idx) = self.free.pop() {
            self.entries[idx as usize] = Some(rec);
            MessageId(idx)
        } else {
            self.entries.push(Some(rec));
            MessageId((self.entries.len() - 1) as u32)
        }
    }

    pub fn get(&self, id: MessageId) -> &MessageRec {
        self.entries[id.0 as usize]
            .as_ref()
            .expect("message id refers to a live message")
    }

    pub fn get_mut(&mut self, id: MessageId) -> &mut MessageRec {
        self.entries[id.0 as usize]
            .as_mut()
            .expect("message id refers to a live message")
    }

    pub fn remove(&mut self, id: MessageId) -> MessageRec {
        let rec = self.entries[id.0 as usize]
            .take()
            .expect("message id refers to a live message");
        self.free.push(id.0);
        self.live -= 1;
        rec
    }

    pub fn live(&self) -> usize {
        self.live
    }

    /// Iterates over live messages in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (MessageId, &MessageRec)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|rec| (MessageId(i as u32), rec)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> MessageRec {
        MessageRec {
            route: MessageRouteState::new(NodeId::new(0), NodeId::new(1)),
            length: 16,
            generated: 0,
            injected: None,
            injection_class: 0,
            src: NodeId::new(0),
        }
    }

    #[test]
    fn ids_are_recycled() {
        let mut slab = MessageSlab::default();
        let a = slab.insert(rec());
        let b = slab.insert(rec());
        assert_ne!(a, b);
        assert_eq!(slab.live(), 2);
        slab.remove(a);
        assert_eq!(slab.live(), 1);
        let c = slab.insert(rec());
        assert_eq!(c, a, "freed slot is reused");
        assert_eq!(slab.live(), 2);
    }

    #[test]
    fn get_mut_mutates() {
        let mut slab = MessageSlab::default();
        let id = slab.insert(rec());
        slab.get_mut(id).injected = Some(5);
        assert_eq!(slab.get(id).injected, Some(5));
    }

    #[test]
    #[should_panic(expected = "live message")]
    fn stale_access_panics() {
        let mut slab = MessageSlab::default();
        let id = slab.insert(rec());
        slab.remove(id);
        let _ = slab.get(id);
    }
}

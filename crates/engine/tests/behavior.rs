//! End-to-end behavioral tests of the flit-level simulator.

use wormsim_engine::{EjectionModel, Network, NetworkBuilder, SelectionPolicy, Switching};
use wormsim_routing::AlgorithmKind;
use wormsim_topology::Topology;
use wormsim_traffic::{ArrivalProcess, MessageLength, TrafficConfig};

const PAPER_ALGOS: [AlgorithmKind; 6] = [
    AlgorithmKind::NegativeHopBonusCards,
    AlgorithmKind::PositiveHop,
    AlgorithmKind::NegativeHop,
    AlgorithmKind::TwoPowerN,
    AlgorithmKind::Ecube,
    AlgorithmKind::NorthLast,
];

fn loaded(algorithm: AlgorithmKind, rate: f64, seed: u64) -> Network {
    NetworkBuilder::new(Topology::torus(&[8, 8]), algorithm)
        .traffic(TrafficConfig::Uniform)
        .arrival(ArrivalProcess::geometric(rate).unwrap())
        .message_length(MessageLength::fixed(16).unwrap())
        .seed(seed)
        .build()
        .unwrap()
}

/// All six paper algorithms survive heavy overload on a torus without
/// watchdog-detected deadlock, and keep delivering.
///
/// This is the empirical counterpart of the deadlock-freedom claims: the
/// CDG checker proves e-cube and the hop schemes acyclic, while 2pn and
/// north-last (cyclic-but-claimed-safe) are validated here.
#[test]
fn saturation_without_deadlock() {
    for algorithm in PAPER_ALGOS {
        // Offered load far beyond saturation for an 8x8 torus.
        let mut net = loaded(algorithm, 0.05, 7);
        net.run(30_000);
        assert!(
            net.deadlock_report().is_none(),
            "{algorithm}: {:?}",
            net.deadlock_report()
        );
        let delivered = net.metrics().delivered;
        assert!(delivered > 1_000, "{algorithm}: only {delivered} delivered");
    }
}

/// The naive single-class strawman deadlocks under the same overload, and
/// the watchdog reports it.
#[test]
fn naive_routing_deadlocks_and_watchdog_fires() {
    let mut net = NetworkBuilder::new(Topology::torus(&[8, 8]), AlgorithmKind::NaiveMinimal)
        .traffic(TrafficConfig::Uniform)
        .arrival(ArrivalProcess::geometric(0.05).unwrap())
        .message_length(MessageLength::fixed(16).unwrap())
        .watchdog_cycles(5_000)
        .seed(3)
        .build()
        .unwrap();
    net.run(60_000);
    let report = net
        .deadlock_report()
        .expect("naive torus routing must deadlock");
    assert!(report.flits_in_flight > 0);
    assert!(report.detected_at >= report.last_progress + 5_000);
}

/// Store-and-forward zero-load latency is `d × m_l` (a full store per hop),
/// versus `m_l + d - 1` for wormhole and cut-through.
#[test]
fn switching_mode_zero_load_latencies() {
    for (switching, expected) in [
        (Switching::wormhole(), 16 + 3 - 1),
        (Switching::VirtualCutThrough, 16 + 3 - 1),
        (Switching::StoreAndForward, 3 * 16),
    ] {
        let mut net = NetworkBuilder::new(Topology::torus(&[8, 8]), AlgorithmKind::Ecube)
            .switching(switching)
            .seed(1)
            .build()
            .unwrap();
        let topo = net.topology().clone();
        net.inject(topo.node_at(&[0, 0]), topo.node_at(&[2, 1]), 16);
        assert!(net.run_until_empty(1_000));
        let d = net.drain_delivered();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].latency, expected, "{switching:?}");
    }
}

/// Under blocking contention, virtual cut-through keeps upstream channels
/// free: with two messages forced through a shared channel, the follower's
/// latency penalty under VCT is no worse than under wormhole.
#[test]
fn contention_resolves_in_all_modes() {
    for switching in [
        Switching::wormhole(),
        Switching::VirtualCutThrough,
        Switching::StoreAndForward,
    ] {
        let mut net = NetworkBuilder::new(Topology::torus(&[8, 8]), AlgorithmKind::Ecube)
            .switching(switching)
            .seed(1)
            .build()
            .unwrap();
        let topo = net.topology().clone();
        // Both messages need the +0 channel out of (1,0): e-cube gives them
        // the same deterministic path segment.
        net.inject(topo.node_at(&[0, 0]), topo.node_at(&[3, 0]), 16);
        net.inject(topo.node_at(&[1, 0]), topo.node_at(&[3, 1]), 16);
        assert!(net.run_until_empty(2_000), "{switching:?}");
        let delivered = net.drain_delivered();
        assert_eq!(delivered.len(), 2);
        // The shared channel serializes the worms: someone waited.
        assert!(
            delivered.iter().any(|m| m.latency > 16 + 3 - 1),
            "{switching:?}: contention should delay at least one message"
        );
    }
}

/// Congestion control refuses excess messages instead of queueing them
/// without bound; with no limit nothing is ever refused.
#[test]
fn congestion_control_refusal() {
    let mut limited = loaded(AlgorithmKind::Ecube, 0.08, 11);
    limited.run(10_000);
    assert!(
        limited.metrics().refused > 0,
        "overload must trigger refusals"
    );

    let mut unlimited = NetworkBuilder::new(Topology::torus(&[8, 8]), AlgorithmKind::Ecube)
        .traffic(TrafficConfig::Uniform)
        .arrival(ArrivalProcess::geometric(0.08).unwrap())
        .message_length(MessageLength::fixed(16).unwrap())
        .congestion_limit(None)
        .seed(11)
        .build()
        .unwrap();
    unlimited.run(10_000);
    assert_eq!(unlimited.metrics().refused, 0);
    // Without refusal the backlog grows without bound.
    assert!(unlimited.live_messages() > limited.live_messages());
}

/// The processor-router port is a real channel: a node injecting several
/// messages at once serializes their flits at one per cycle.
#[test]
fn injection_bandwidth_serializes() {
    let mut net = NetworkBuilder::new(Topology::torus(&[8, 8]), AlgorithmKind::PositiveHop)
        .seed(1)
        .build()
        .unwrap();
    let topo = net.topology().clone();
    let src = topo.node_at(&[0, 0]);
    // Four 16-flit messages to distinct destinations: 64 flits through a
    // 1-flit/cycle port.
    for dest in [[1u16, 0u16], [0, 1], [7, 0], [0, 7]] {
        net.inject(src, topo.node_at(&dest), 16);
    }
    assert!(net.run_until_empty(2_000));
    let delivered = net.drain_delivered();
    assert_eq!(delivered.len(), 4);
    let worst = delivered.iter().map(|m| m.latency).max().unwrap();
    // The last tail cannot leave the source before cycle 64.
    assert!(
        worst >= 64,
        "worst latency {worst} ignores injection bandwidth"
    );
}

/// A single shared ejection channel throttles delivery to a hotspot node,
/// while per-VC delivery does not.
#[test]
fn ejection_models_differ_under_convergent_traffic() {
    let run = |ejection: EjectionModel| {
        let mut net = NetworkBuilder::new(Topology::torus(&[8, 8]), AlgorithmKind::PositiveHop)
            .ejection(ejection)
            .seed(5)
            .build()
            .unwrap();
        let topo = net.topology().clone();
        let hot = topo.node_at(&[4, 4]);
        // Four neighbors each send 4 messages to the same destination.
        for s in [[3u16, 4u16], [5, 4], [4, 3], [4, 5]] {
            for _ in 0..4 {
                net.inject(topo.node_at(&s), hot, 16);
            }
        }
        assert!(net.run_until_empty(10_000));
        net.drain_delivered()
            .iter()
            .map(|m| m.latency)
            .max()
            .unwrap()
    };
    let single = run(EjectionModel::SingleChannel);
    let per_vc = run(EjectionModel::PerVc);
    assert!(
        single > per_vc,
        "single ejection channel ({single}) should be slower than per-VC ({per_vc})"
    );
    // 16 messages x 16 flits through one ejection channel need >= 256 cycles.
    assert!(single >= 256);
}

/// Selection policies are all deadlock-free and deliver equivalent totals
/// at moderate load (they only differ in which free VC they pick).
#[test]
fn selection_policies_all_work() {
    for policy in [
        SelectionPolicy::MostCredits,
        SelectionPolicy::FirstFree,
        SelectionPolicy::Random,
    ] {
        let mut net = NetworkBuilder::new(
            Topology::torus(&[8, 8]),
            AlgorithmKind::NegativeHopBonusCards,
        )
        .traffic(TrafficConfig::Uniform)
        .arrival(ArrivalProcess::geometric(0.01).unwrap())
        .message_length(MessageLength::fixed(16).unwrap())
        .selection(policy)
        .seed(9)
        .build()
        .unwrap();
        net.run(10_000);
        assert!(net.deadlock_report().is_none(), "{policy:?}");
        assert!(net.metrics().delivered > 500, "{policy:?}");
    }
}

/// Meshes work end to end (boundary channels never used, e-cube single
/// class), including with traffic.
#[test]
fn mesh_simulation() {
    let mut net = NetworkBuilder::new(Topology::mesh(&[8, 8]), AlgorithmKind::Ecube)
        .traffic(TrafficConfig::Uniform)
        .arrival(ArrivalProcess::geometric(0.01).unwrap())
        .message_length(MessageLength::fixed(16).unwrap())
        .seed(2)
        .build()
        .unwrap();
    net.run(10_000);
    assert!(net.deadlock_report().is_none());
    assert!(net.metrics().delivered > 500);
}

/// Multiple VC replicas per class (Dally's virtual-channel flow control)
/// improve e-cube throughput under load.
#[test]
fn vc_replicas_increase_ecube_throughput() {
    let run = |replicas: u32| {
        let mut net = NetworkBuilder::new(Topology::torus(&[8, 8]), AlgorithmKind::Ecube)
            .traffic(TrafficConfig::Uniform)
            .arrival(ArrivalProcess::geometric(0.04).unwrap())
            .message_length(MessageLength::fixed(16).unwrap())
            .vc_replicas(replicas)
            .seed(13)
            .build()
            .unwrap();
        net.run(20_000);
        assert!(net.deadlock_report().is_none());
        net.metrics().delivered
    };
    let one = run(1);
    let four = run(4);
    assert!(
        four as f64 > one as f64 * 1.10,
        "4 VCs/class ({four}) should clearly beat 1 ({one})"
    );
}

/// Hotspot traffic delivers and the hotspot node receives the most.
#[test]
fn hotspot_traffic_concentrates() {
    let mut net = NetworkBuilder::new(Topology::torus(&[8, 8]), AlgorithmKind::PositiveHop)
        .traffic(TrafficConfig::Hotspot {
            nodes: vec![vec![7, 7]],
            fraction: 0.1,
        })
        .arrival(ArrivalProcess::geometric(0.005).unwrap())
        .message_length(MessageLength::fixed(16).unwrap())
        .seed(17)
        .build()
        .unwrap();
    net.run(20_000);
    assert!(net.metrics().delivered > 500);
    assert!(net.deadlock_report().is_none());
}

/// Per-class flit counters expose the load imbalance the paper discusses:
/// under nhop, class 0 carries far more traffic than the top class.
#[test]
fn nhop_class_load_is_skewed_and_nbc_flatter() {
    let class_loads = |algorithm: AlgorithmKind| {
        let mut net = loaded(algorithm, 0.02, 23);
        net.run(20_000);
        net.metrics().class_flits.clone()
    };
    let nhop = class_loads(AlgorithmKind::NegativeHop);
    let nbc = class_loads(AlgorithmKind::NegativeHopBonusCards);
    // nhop: every message starts at class 0; the top class is nearly idle.
    assert!(nhop[0] > 20 * nhop[nhop.len() - 1].max(1));
    // nbc spreads first hops over classes: its ratio is much flatter.
    let ratio = |v: &[u64]| v[0] as f64 / v[v.len() - 1].max(1) as f64;
    assert!(
        ratio(&nbc) < ratio(&nhop) / 4.0,
        "nbc ratio {} vs nhop ratio {}",
        ratio(&nbc),
        ratio(&nhop)
    );
}

/// Reseeding streams changes subsequent traffic but not the past; metrics
/// reset does not disturb in-flight state.
#[test]
fn sampling_controls() {
    let mut net = loaded(AlgorithmKind::PositiveHop, 0.01, 31);
    net.run(5_000);
    let before = net.metrics().delivered;
    assert!(before > 0);
    net.reset_metrics();
    assert_eq!(net.metrics().delivered, 0);
    net.reseed_streams(1);
    net.run(5_000);
    assert!(net.metrics().delivered > 0);
    assert!(net.deadlock_report().is_none());
    // Conservation across the reset: messages drain cleanly afterwards.
    let drained = {
        let mut n = net;
        // Stop arrivals by consuming the network: rebuild with Off is
        // simpler, but draining with live arrivals can't terminate, so we
        // just check live bookkeeping here.
        n.drain_delivered().len()
    };
    let _ = drained;
}

/// Channel-load tracking records activity on every used channel.
#[test]
fn channel_load_tracking() {
    let mut net = NetworkBuilder::new(Topology::torus(&[4, 4]), AlgorithmKind::Ecube)
        .track_channel_load(true)
        .seed(1)
        .build()
        .unwrap();
    let topo = net.topology().clone();
    net.inject(topo.node_at(&[0, 0]), topo.node_at(&[2, 0]), 4);
    assert!(net.run_until_empty(100));
    let loads = net.metrics().channel_flits.as_ref().unwrap();
    let total: u64 = loads.iter().sum();
    assert_eq!(total, net.metrics().flit_hops);
    assert_eq!(total, 8, "4 flits x 2 hops");
}

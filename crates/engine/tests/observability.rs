//! Tests of the engine's observability hooks: bounded trace rings, JSONL
//! event streams, the time-series sampler, the deep-telemetry metrics
//! registry, and wait-for forensics.

use wormsim_engine::observe::json;
use wormsim_engine::observe::{EventSink, JsonRecord, JsonlSink, Sample};
use wormsim_engine::{Network, NetworkBuilder, TraceEvent, DEFAULT_TRACE_CAPACITY};
use wormsim_routing::AlgorithmKind;
use wormsim_topology::Topology;
use wormsim_traffic::{ArrivalProcess, MessageLength, TrafficConfig};

/// A sink that keeps everything, for asserting on sample streams.
struct CollectSink(std::sync::mpsc::Sender<Sample>);

impl EventSink<Sample> for CollectSink {
    fn record(&mut self, event: &Sample) {
        let _ = self.0.send(event.clone());
    }
}

fn busy_net(seed: u64) -> Network {
    NetworkBuilder::new(Topology::torus(&[6, 6]), AlgorithmKind::PositiveHop)
        .traffic(TrafficConfig::Uniform)
        .arrival(ArrivalProcess::geometric(0.02).unwrap())
        .message_length(MessageLength::fixed(8).unwrap())
        .track_channel_load(true)
        .seed(seed)
        .build()
        .unwrap()
}

#[test]
fn trace_ring_is_bounded_and_counts_drops() {
    let mut net = busy_net(1);
    net.observer().trace_ring_with_capacity(64);
    net.run(3_000);
    let total_events = net.metrics().generated
        + net.metrics().refused
        + net.metrics().delivered
        + net.metrics().flits_ejected;
    assert!(total_events > 64, "the run must overflow the ring");
    let dropped = net.dropped_trace_events();
    assert!(dropped > 0, "overflow must be counted");
    let events = net.drain_trace();
    assert_eq!(events.len(), 64, "ring keeps exactly its capacity");
    // The ring keeps the *most recent* events.
    assert!(events.windows(2).all(|w| w[0].cycle() <= w[1].cycle()));
    assert!(events[0].cycle() > 0);
}

#[test]
fn default_ring_capacity_is_documented_value() {
    let mut net = busy_net(2);
    net.observer().trace_ring();
    net.run(200);
    // Well under capacity: nothing dropped, everything retained.
    assert_eq!(net.dropped_trace_events(), 0);
    let events = net.drain_trace();
    assert!(!events.is_empty());
    assert!(events.len() < DEFAULT_TRACE_CAPACITY);
}

#[test]
fn jsonl_event_sink_streams_parseable_trace() {
    let mut net = busy_net(3);
    net.observer()
        .trace_into(Box::new(JsonlSink::new(Vec::new())));
    net.run(500);
    net.flush_observers().unwrap();
    let sink = net
        .observer()
        .take_trace_sink()
        .expect("custom sink installed");
    assert!(
        net.observer().take_trace_sink().is_none(),
        "sink can only be taken once"
    );
    // Round-trip the stream: every line parses into a TraceEvent.
    // (The sink type is erased; recover the bytes via the JSONL text.)
    drop(sink);

    // Re-run against a fresh network, keeping the writer reachable.
    let mut net = busy_net(3);
    let mut jsonl = JsonlSink::new(Vec::new());
    // Stream manually through the ring drain to keep ownership local.
    net.observer().trace_ring_with_capacity(usize::MAX);
    net.run(500);
    let events = net.drain_trace();
    assert!(!events.is_empty());
    for event in &events {
        jsonl.record(event);
    }
    let text = String::from_utf8(jsonl.into_inner().unwrap()).unwrap();
    let mut parsed = Vec::new();
    for value in json::StreamDeserializer::new(&text) {
        parsed.push(TraceEvent::from_json(&value.unwrap()).unwrap());
    }
    assert_eq!(parsed, events, "JSONL round-trips the exact event stream");
}

#[test]
fn sampler_emits_on_stride_with_consistent_windows() {
    let (tx, rx) = std::sync::mpsc::channel();
    let mut net = busy_net(4);
    net.observer().sample(250, Box::new(CollectSink(tx)));
    net.run(1_000);
    net.reset_metrics(); // must not corrupt the in-progress window
    net.run(1_000);
    net.sample_now();
    net.sample_now(); // second call is a no-op: empty window
    drop(net);
    let samples: Vec<Sample> = rx.try_iter().collect();
    assert_eq!(
        samples.len(),
        8,
        "2000 cycles / 250 stride, tail window empty"
    );
    for (i, sample) in samples.iter().enumerate() {
        assert_eq!(sample.cycle, 250 * (i as u64 + 1));
        assert_eq!(sample.window_cycles, 250);
        assert_eq!(sample.flit_hops, sample.class_flits.iter().sum::<u64>());
        assert_eq!(sample.flit_hops, sample.channel_flits.iter().sum::<u64>());
        if sample.delivered > 0 {
            let mean = sample.mean_latency().unwrap();
            assert!(mean >= 1.0, "latency is at least one cycle, got {mean}");
        }
    }
    // Windows tile the run: summed deltas equal a whole-run recount.
    let mut recount = busy_net(4);
    recount.run(2_000);
    let generated: u64 = samples.iter().map(|s| s.generated).sum();
    assert_eq!(generated, recount.metrics().generated);
    let hops: u64 = samples.iter().map(|s| s.flit_hops).sum();
    assert_eq!(hops, recount.metrics().flit_hops);
}

#[test]
fn sample_now_flushes_partial_window() {
    let (tx, rx) = std::sync::mpsc::channel();
    let mut net = busy_net(5);
    net.observer().sample(1_000, Box::new(CollectSink(tx)));
    net.run(300);
    net.sample_now();
    let samples: Vec<Sample> = rx.try_iter().collect();
    assert_eq!(samples.len(), 1);
    assert_eq!(samples[0].cycle, 300);
    assert_eq!(samples[0].window_cycles, 300);
    assert!(net.observer().sample_off().is_some());
    assert!(net.observer().sample_off().is_none());
}

#[test]
fn sampler_snapshot_fields_are_coherent() {
    let (tx, rx) = std::sync::mpsc::channel();
    let mut net = busy_net(6);
    net.observer().sample(500, Box::new(CollectSink(tx)));
    net.run(2_000);
    let samples: Vec<Sample> = rx.try_iter().collect();
    assert!(!samples.is_empty());
    for sample in &samples {
        assert!(sample.max_queue_depth <= sample.queued_messages);
        assert!(sample.queued_messages <= sample.live_messages);
        let buffered: u64 = sample.class_occupancy.iter().sum();
        assert!(
            buffered <= sample.flits_in_flight,
            "buffered flits are a subset of flits in flight"
        );
    }
    assert!(
        samples.iter().any(|s| s.flits_in_flight > 0),
        "a loaded network has in-flight flits at some snapshot"
    );
}

#[test]
fn disabled_observability_is_inert() {
    let mut net = busy_net(7);
    net.run(500);
    assert_eq!(net.dropped_trace_events(), 0);
    assert_eq!(net.dropped_sample_events(), 0);
    assert_eq!(net.observer_dropped_events(), 0);
    assert!(net.drain_trace().is_empty());
    net.sample_now();
    net.flush_observers().unwrap();
}

#[test]
fn tracing_and_sampling_do_not_perturb_results() {
    let run = |observe: bool| {
        let mut net = busy_net(8);
        if observe {
            net.observer().trace_ring_with_capacity(128);
            let (tx, _rx) = std::sync::mpsc::channel();
            net.observer().sample(100, Box::new(CollectSink(tx)));
        }
        net.run(2_000);
        (
            net.metrics().generated,
            net.metrics().delivered,
            net.metrics().flit_hops,
        )
    };
    assert_eq!(run(false), run(true), "observability must be read-only");
}

#[test]
fn metrics_registry_counts_cohere_with_engine_counters() {
    let mut net = busy_net(9);
    net.observer().metrics_on();
    net.run(2_000);
    let registry = net.metrics_registry().expect("registry installed");
    assert_eq!(registry.cycles, 2_000);
    // Channel/class traversal counters agree with the engine's own
    // flit-hop metric, split two ways over the same events.
    let channel_total: u64 = registry.channel_flits.iter().sum();
    let class_total: u64 = registry.class_flits.iter().sum();
    assert_eq!(channel_total, net.metrics().flit_hops);
    assert_eq!(class_total, net.metrics().flit_hops);
    assert_eq!(registry.latency.count(), net.metrics().delivered);
    assert!(registry.latency.max() >= 1, "latency is at least one cycle");
    // The phase profiler charged time to every engine phase.
    assert!(registry.phase_nanos.iter().all(|&n| n > 0));
    // A loaded adaptive network sees *some* contention.
    let blocked: u64 = registry.channel_blocked.iter().sum();
    assert!(blocked > 0, "no switch-allocation contention in 2k cycles?");

    // metrics_off hands the registry back; a fresh metrics_on starts over.
    let taken = net.observer().metrics_off().expect("was installed");
    assert_eq!(taken.cycles, 2_000);
    assert!(net.metrics_registry().is_none());
    net.observer().metrics_on();
    assert_eq!(net.metrics_registry().unwrap().cycles, 0);
}

#[test]
fn metrics_registry_does_not_perturb_results() {
    let run = |metrics: bool| {
        let mut net = busy_net(10);
        if metrics {
            net.observer().metrics_on();
        }
        net.run(2_000);
        (
            net.metrics().generated,
            net.metrics().delivered,
            net.metrics().flit_hops,
        )
    };
    assert_eq!(run(false), run(true), "the registry must be read-only");
}

#[test]
fn wait_for_snapshot_of_a_healthy_network_finds_no_cycle() {
    let mut net = busy_net(11);
    net.run(500);
    let snapshot = net.wait_for_snapshot("probe");
    assert_eq!(snapshot.cycle, 500);
    assert_eq!(snapshot.reason, "probe");
    assert_eq!(snapshot.live_messages, net.live_messages() as u64);
    assert_eq!(snapshot.flits_in_flight, net.flits_in_flight());
    // A lightly loaded adaptive torus may have transient waits, but no
    // closed channel cycle.
    assert!(!snapshot.cycle_found, "healthy network has no wait cycle");
    assert!(snapshot.cycle_messages.is_empty());
    // The snapshot round-trips through its JSONL form.
    let value = json::from_str(&snapshot.to_json()).unwrap();
    let back = wormsim_engine::observe::WaitForSnapshot::from_json(&value).unwrap();
    assert_eq!(back, snapshot);
}

#[test]
fn observer_handle_covers_the_removed_setter_shims() {
    // The PR-3 `#[deprecated]` setters are gone; the ObserverHandle paths
    // they forwarded to must cover the same behavior.
    let mut net = busy_net(4);
    net.observer().trace_ring_with_capacity(32);
    net.run(200);
    assert!(!net.drain_trace().is_empty());
    net.observer().trace_off();
    net.run(50);
    assert!(net.drain_trace().is_empty());

    let (tx, rx) = std::sync::mpsc::channel();
    net.observer().sample(100, Box::new(CollectSink(tx)));
    net.run(250);
    assert!(net.observer().sample_off().is_some());
    assert!(rx.try_iter().count() >= 2);

    net.observer()
        .trace_into(Box::new(JsonlSink::new(Vec::new())));
    assert!(net.observer().take_trace_sink().is_some());
    net.observer().trace_ring();
    assert!(
        net.observer().take_trace_sink().is_none(),
        "ring is not a custom sink"
    );
}

//! Property-based tests of engine invariants over randomized
//! configurations and workloads.

use proptest::prelude::*;
use wormsim_engine::{EjectionModel, Network, NetworkBuilder, SelectionPolicy, Switching};
use wormsim_routing::AlgorithmKind;
use wormsim_topology::{NodeId, Topology};
use wormsim_traffic::{ArrivalProcess, MessageLength, TrafficConfig};

#[derive(Debug, Clone)]
struct Scenario {
    topo: Topology,
    algorithm: AlgorithmKind,
    switching: Switching,
    selection: SelectionPolicy,
    ejection: EjectionModel,
    replicas: u32,
    rate: f64,
    length: MessageLength,
    seed: u64,
    cycles: u64,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    let topo = prop_oneof![
        Just(Topology::torus(&[4, 4])),
        Just(Topology::torus(&[6, 6])),
        Just(Topology::torus(&[4, 6])),
        Just(Topology::mesh(&[6, 6])),
        Just(Topology::torus(&[4, 4, 4])),
    ];
    let algorithm = prop_oneof![
        Just(AlgorithmKind::Ecube),
        Just(AlgorithmKind::NorthLast),
        Just(AlgorithmKind::TwoPowerN),
        Just(AlgorithmKind::PositiveHop),
        Just(AlgorithmKind::NegativeHop),
        Just(AlgorithmKind::NegativeHopBonusCards),
    ];
    let switching = prop_oneof![
        (1u32..=4).prop_map(|d| Switching::Wormhole { buffer_depth: d }),
        Just(Switching::VirtualCutThrough),
        Just(Switching::StoreAndForward),
    ];
    let selection = prop_oneof![
        Just(SelectionPolicy::MostCredits),
        Just(SelectionPolicy::FirstFree),
        Just(SelectionPolicy::Random),
    ];
    let ejection = prop_oneof![
        Just(EjectionModel::PerVc),
        Just(EjectionModel::SingleChannel)
    ];
    let length = prop_oneof![
        (1u32..=20).prop_map(|f| MessageLength::Fixed { flits: f }),
        Just(MessageLength::Uniform { min: 2, max: 9 }),
    ];
    (
        topo,
        algorithm,
        switching,
        selection,
        ejection,
        1u32..=2,
        0.001f64..0.03,
        length,
        any::<u64>(),
        500u64..2_000,
    )
        .prop_map(
            |(
                topo,
                algorithm,
                switching,
                selection,
                ejection,
                replicas,
                rate,
                length,
                seed,
                cycles,
            )| {
                Scenario {
                    topo,
                    algorithm,
                    switching,
                    selection,
                    ejection,
                    replicas,
                    rate,
                    length,
                    seed,
                    cycles,
                }
            },
        )
}

fn build(s: &Scenario) -> Option<Network> {
    NetworkBuilder::new(s.topo.clone(), s.algorithm)
        .traffic(TrafficConfig::Uniform)
        .arrival(ArrivalProcess::geometric(s.rate).expect("valid rate"))
        .message_length(s.length)
        .switching(s.switching)
        .selection(s.selection)
        .ejection(s.ejection)
        .vc_replicas(s.replicas)
        .seed(s.seed)
        .build()
        .ok() // nhop/nbc reject non-bipartite tori; nlast rejects 1-D
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Counter invariants hold mid-flight under any configuration: flits
    /// never leave faster than they enter, in-flight accounting covers the
    /// in-network population, cycles are counted, and no paper algorithm
    /// deadlocks.
    #[test]
    fn counters_are_consistent(s in arb_scenario()) {
        let Some(mut net) = build(&s) else { return Ok(()) };
        net.run(s.cycles);
        let m = net.metrics();
        prop_assert!(m.flits_ejected <= m.flits_injected);
        // flits_in_flight = source-queued + in-network flits.
        prop_assert!(net.flits_in_flight() >= m.flits_injected - m.flits_ejected);
        prop_assert_eq!(m.cycles, s.cycles);
        // Per-class flit counters sum to the total network transfers.
        let by_class: u64 = m.class_flits.iter().sum();
        prop_assert_eq!(by_class, m.flit_hops);
        prop_assert!(net.deadlock_report().is_none(), "{:?}", net.deadlock_report());
    }

    /// Message accounting: generated = delivered + live.
    #[test]
    fn messages_are_accounted(s in arb_scenario()) {
        let Some(mut net) = build(&s) else { return Ok(()) };
        net.run(s.cycles);
        prop_assert_eq!(
            net.metrics().generated,
            net.metrics().delivered + net.live_messages() as u64
        );
        let delivered = net.drain_delivered();
        prop_assert_eq!(delivered.len() as u64, net.metrics().delivered);
    }

    /// Every delivered message respects the switching mode's latency lower
    /// bound and records a consistent hop class.
    #[test]
    fn latencies_respect_lower_bounds(s in arb_scenario()) {
        let Some(mut net) = build(&s) else { return Ok(()) };
        net.run(s.cycles);
        let diameter = s.topo.diameter();
        for m in net.drain_delivered() {
            prop_assert!(m.hop_class >= 1 && (m.hop_class as u32) <= diameter);
            let bound = match s.switching {
                Switching::StoreAndForward => m.hop_class as u64 * m.length as u64,
                _ => m.length as u64 + m.hop_class as u64 - 1,
            };
            prop_assert!(
                m.latency >= bound,
                "latency {} below bound {} (class {}, len {})",
                m.latency, bound, m.hop_class, m.length
            );
            prop_assert!(m.source_wait <= m.latency);
        }
    }

    /// Manual injections into an idle network always drain completely
    /// (no stuck flits, no leaked messages), and reruns with the same seed
    /// are bit-identical.
    #[test]
    fn manual_injections_drain_and_replay(
        s in arb_scenario(),
        pairs in prop::collection::vec((any::<u32>(), any::<u32>()), 1..12),
    ) {
        let run = |seed: u64| -> Option<(u64, Vec<(u16, u64)>)> {
            let mut net = NetworkBuilder::new(s.topo.clone(), s.algorithm)
                .switching(s.switching)
                .selection(s.selection)
                .ejection(s.ejection)
                .vc_replicas(s.replicas)
                .message_length(s.length)
                .seed(seed)
                .build()
                .ok()?;
            let n = s.topo.num_nodes();
            // Stay within the configured buffer capacity: cut-through and
            // store-and-forward size buffers for s.length.max().
            let flits = s.length.max().min(5);
            for &(a, b) in &pairs {
                let src = NodeId::new(a % n);
                let dest = NodeId::new(b % n);
                if src != dest {
                    net.inject(src, dest, flits);
                }
            }
            assert!(net.run_until_empty(60_000), "must drain");
            assert_eq!(net.live_messages(), 0);
            assert_eq!(net.metrics().flits_injected, net.metrics().flits_ejected);
            let mut out: Vec<(u16, u64)> = net
                .drain_delivered()
                .iter()
                .map(|m| (m.hop_class, m.latency))
                .collect();
            out.sort_unstable();
            Some((net.metrics().flit_hops, out))
        };
        let first = run(s.seed);
        let second = run(s.seed);
        prop_assert_eq!(first, second);
    }
}

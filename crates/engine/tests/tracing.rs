//! Tests of the message-lifecycle trace: event ordering, path continuity,
//! and agreement with the delivered-message records.

use wormsim_engine::{NetworkBuilder, TraceEvent};
use wormsim_routing::AlgorithmKind;
use wormsim_topology::{NodeId, Topology};
use wormsim_traffic::{ArrivalProcess, MessageLength, TrafficConfig};

#[test]
fn single_message_trace_is_a_minimal_path() {
    let topo = Topology::torus(&[8, 8]);
    let mut net = NetworkBuilder::new(topo.clone(), AlgorithmKind::NegativeHopBonusCards)
        .seed(1)
        .build()
        .unwrap();
    net.observer().trace_ring();
    let src = topo.node_at(&[1, 2]);
    let dest = topo.node_at(&[5, 7]);
    let id = net.inject(src, dest, 16);
    assert!(net.run_until_empty(1_000));

    let events = net.drain_trace();
    // Lifecycle structure.
    assert!(matches!(
        events[0],
        TraceEvent::Generated { msg, src: s, dest: d, length: 16, .. }
            if msg == id && s == src && d == dest
    ));
    assert!(matches!(events[1], TraceEvent::InjectionStarted { msg, .. } if msg == id));

    // Hops form a connected minimal path from src to dest.
    let hops: Vec<(NodeId, wormsim_topology::Direction)> = events
        .iter()
        .filter_map(|e| match *e {
            TraceEvent::HopTaken {
                from, direction, ..
            } => Some((from, direction)),
            _ => None,
        })
        .collect();
    assert_eq!(hops.len() as u32, topo.distance(src, dest));
    let mut here = src;
    for (from, direction) in &hops {
        assert_eq!(*from, here, "hops must chain");
        let next = topo.neighbor(here, *direction).unwrap();
        assert_eq!(topo.distance(next, dest), topo.distance(here, dest) - 1);
        here = next;
    }
    assert_eq!(here, dest);

    // All 16 flits delivered, then the Delivered event, with a latency
    // matching the zero-load formula and the drained record.
    let flits_delivered = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::FlitDelivered { .. }))
        .count();
    assert_eq!(flits_delivered, 16);
    let delivered_latency = events
        .iter()
        .find_map(|e| match *e {
            TraceEvent::Delivered { latency, .. } => Some(latency),
            _ => None,
        })
        .expect("delivered event present");
    assert_eq!(delivered_latency, 16 + topo.distance(src, dest) as u64 - 1);
    let record = net.drain_delivered();
    assert_eq!(record[0].latency, delivered_latency);

    // Event cycles never decrease.
    assert!(events.windows(2).all(|w| w[0].cycle() <= w[1].cycle()));
}

#[test]
fn refusals_are_traced_under_overload() {
    let mut net = NetworkBuilder::new(Topology::torus(&[4, 4]), AlgorithmKind::Ecube)
        .traffic(TrafficConfig::Uniform)
        .arrival(ArrivalProcess::geometric(0.2).unwrap())
        .message_length(MessageLength::fixed(16).unwrap())
        .seed(5)
        .build()
        .unwrap();
    net.observer().trace_ring();
    net.run(2_000);
    let events = net.drain_trace();
    let refusals = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Refused { .. }))
        .count();
    assert_eq!(refusals as u64, net.metrics().refused);
    assert!(refusals > 0, "overload must refuse");
    // Tracing off by default: a fresh run records nothing.
    net.observer().trace_off();
    net.run(100);
    assert!(net.drain_trace().is_empty());
}

#[test]
fn trace_volume_matches_counters() {
    let mut net = NetworkBuilder::new(Topology::torus(&[6, 6]), AlgorithmKind::PositiveHop)
        .traffic(TrafficConfig::Uniform)
        .arrival(ArrivalProcess::geometric(0.01).unwrap())
        .message_length(MessageLength::fixed(4).unwrap())
        .seed(9)
        .build()
        .unwrap();
    net.observer().trace_ring();
    net.run(3_000);
    let events = net.drain_trace();
    let m = net.metrics();
    let count = |f: fn(&TraceEvent) -> bool| events.iter().filter(|e| f(e)).count() as u64;
    assert_eq!(
        count(|e| matches!(e, TraceEvent::Generated { .. })),
        m.generated
    );
    assert_eq!(
        count(|e| matches!(e, TraceEvent::Delivered { .. })),
        m.delivered
    );
    assert_eq!(
        count(|e| matches!(e, TraceEvent::FlitDelivered { .. })),
        m.flits_ejected
    );
}

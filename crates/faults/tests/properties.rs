//! Property-based tests for fault-region geometry on n-dimensional
//! networks, including mixed radices (e.g. 4×6×8) where a per-dimension
//! wrap bug would not show up on the square 2D cases the unit tests cover.

use proptest::prelude::*;
use wormsim_faults::FaultRegion;
use wormsim_topology::Topology;

/// Dimensions (1–3 dims, radices 2–9) plus a box whose origin is a valid
/// coordinate and whose extent is `1..=radix` per dimension, and a
/// mesh/torus flag. The shim's `prop::collection::vec` takes one element
/// strategy, so origin/extent are derived from fixed-length seed vectors.
fn arb_case() -> impl Strategy<Value = (Topology, Vec<u16>, Vec<u16>)> {
    let dims = prop::collection::vec(2u16..=9, 1..=3);
    let seeds = prop::collection::vec(0u16..10_000, 3);
    (dims, seeds.clone(), seeds, prop::bool::ANY).prop_map(|(dims, oseed, eseed, torus)| {
        let origin: Vec<u16> = dims.iter().zip(&oseed).map(|(&k, &s)| s % k).collect();
        let extent: Vec<u16> = dims.iter().zip(&eseed).map(|(&k, &s)| 1 + s % k).collect();
        let topo = if torus {
            Topology::torus(&dims)
        } else {
            Topology::mesh(&dims)
        };
        (topo, origin, extent)
    })
}

proptest! {
    /// `contains` agrees with per-dimension enumeration of the box's
    /// coordinates: on a torus the interval `origin[d] .. origin[d] +
    /// extent[d]` wraps modulo the radix; on a mesh it is clipped.
    #[test]
    fn box_membership_matches_enumeration((t, origin, extent) in arb_case()) {
        let region = FaultRegion::coordinate_box(&origin, &extent);
        for node in t.nodes() {
            let expected = (0..t.num_dims()).all(|d| {
                let k = t.radix(d);
                let c = t.coord(node, d);
                (0..extent[d]).any(|j| {
                    if t.wraps() {
                        (origin[d] + j) % k == c
                    } else {
                        origin[d] + j == c
                    }
                })
            });
            prop_assert_eq!(
                region.contains(&t, node),
                expected,
                "node {:?} in box origin {:?} extent {:?} on {}",
                t.coords(node),
                &origin,
                &extent,
                &t
            );
        }
    }

    /// On a torus every box of extent `e` (with `e[d] <= radix`) contains
    /// exactly `prod(e[d])` nodes regardless of where its origin sits —
    /// wrapping never clips. On a mesh the edge does clip, to
    /// `prod(min(e[d], radix - origin[d]))`.
    #[test]
    fn box_population_is_exact((t, origin, extent) in arb_case()) {
        let region = FaultRegion::coordinate_box(&origin, &extent);
        let population = t.nodes().filter(|&n| region.contains(&t, n)).count();
        let expected: usize = (0..t.num_dims())
            .map(|d| {
                if t.wraps() {
                    extent[d] as usize
                } else {
                    extent[d].min(t.radix(d) - origin[d]) as usize
                }
            })
            .product();
        prop_assert_eq!(population, expected);
    }

    /// The origin corner is always inside its own box (extent >= 1).
    #[test]
    fn origin_is_always_inside((t, origin, extent) in arb_case()) {
        let region = FaultRegion::coordinate_box(&origin, &extent);
        prop_assert!(region.contains(&t, t.node_at(&origin)));
    }
}

#[test]
fn box_wraps_every_dimension_of_a_mixed_radix_torus() {
    // 4×6×8: each dimension wraps independently at its own radix. A box
    // cornered at the top of every dimension spills past each dateline.
    let topo = Topology::torus(&[4, 6, 8]);
    let region = FaultRegion::coordinate_box(&[3, 5, 7], &[2, 2, 2]);
    for coords in [[3, 5, 7], [0, 5, 7], [3, 0, 7], [3, 5, 0], [0, 0, 0]] {
        assert!(region.contains(&topo, topo.node_at(&coords)), "{coords:?}");
    }
    assert!(!region.contains(&topo, topo.node_at(&[1, 0, 0])));
    assert!(!region.contains(&topo, topo.node_at(&[0, 1, 0])));
    assert!(!region.contains(&topo, topo.node_at(&[0, 0, 1])));
    assert_eq!(
        topo.nodes().filter(|&n| region.contains(&topo, n)).count(),
        8
    );
}

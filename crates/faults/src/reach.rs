//! All-pairs reachability over the surviving subgraph.

use wormsim_topology::{ChannelMask, NodeId, Topology};

/// Precomputed all-pairs reachability under a
/// [`ChannelMask`](wormsim_topology::ChannelMask).
///
/// Row `s` answers "which destinations can a message injected at `s` still
/// reach using only live channels?". The simulator recomputes this at each
/// fault transition (they are rare) and then answers per-message queries
/// with a single bit lookup.
///
/// # Example
///
/// ```
/// use wormsim_faults::{FaultPlan, Reachability};
/// use wormsim_topology::Topology;
///
/// let topo = Topology::torus(&[4, 4]);
/// let mut plan = FaultPlan::new();
/// plan.push_dead_node(topo.node_at(&[1, 1]));
/// let reach = Reachability::compute(&topo, &plan.mask_at(&topo, 0));
/// assert!(!reach.all_pairs_routable());
/// assert!(reach.routable(topo.node_at(&[0, 0]), topo.node_at(&[2, 2])));
/// assert!(!reach.routable(topo.node_at(&[0, 0]), topo.node_at(&[1, 1])));
/// ```
#[derive(Clone, Debug)]
pub struct Reachability {
    num_nodes: u32,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl Reachability {
    /// Runs one BFS per node over the masked topology.
    pub fn compute(topo: &Topology, mask: &ChannelMask) -> Self {
        let num_nodes = topo.num_nodes();
        let words_per_row = (num_nodes as usize).div_ceil(64);
        let mut bits = vec![0u64; words_per_row * num_nodes as usize];
        for src in topo.nodes() {
            let reach = topo.reachable_from(mask, src);
            let row = &mut bits
                [src.index() as usize * words_per_row..(src.index() as usize + 1) * words_per_row];
            for (d, &ok) in reach.iter().enumerate() {
                if ok {
                    row[d / 64] |= 1u64 << (d % 64);
                }
            }
        }
        Reachability {
            num_nodes,
            words_per_row,
            bits,
        }
    }

    /// Whether a message injected at `src` can reach `dest`.
    #[inline]
    pub fn routable(&self, src: NodeId, dest: NodeId) -> bool {
        let d = dest.index() as usize;
        self.bits[src.index() as usize * self.words_per_row + d / 64] & (1u64 << (d % 64)) != 0
    }

    /// Number of routable ordered pairs with distinct endpoints.
    pub fn routable_pairs(&self) -> u64 {
        let mut total: u64 = 0;
        for s in 0..self.num_nodes {
            let row = &self.bits[s as usize * self.words_per_row..];
            let mut count: u64 = row[..self.words_per_row]
                .iter()
                .map(|w| w.count_ones() as u64)
                .sum();
            // Exclude the trivial src == dest bit if set.
            if self.routable(NodeId::new(s), NodeId::new(s)) {
                count -= 1;
            }
            total += count;
        }
        total
    }

    /// Whether every ordered pair of distinct nodes is routable.
    pub fn all_pairs_routable(&self) -> bool {
        self.routable_pairs() == self.num_nodes as u64 * (self.num_nodes as u64 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultPlan;
    use wormsim_topology::{Direction, Sign};

    #[test]
    fn healthy_network_is_fully_routable() {
        let topo = Topology::torus(&[4, 4]);
        let reach = Reachability::compute(&topo, &FaultPlan::new().mask_at(&topo, 0));
        assert!(reach.all_pairs_routable());
        assert_eq!(reach.routable_pairs(), 16 * 15);
    }

    #[test]
    fn dead_node_removes_its_pairs() {
        let topo = Topology::torus(&[4, 4]);
        let mut plan = FaultPlan::new();
        plan.push_dead_node(topo.node_at(&[3, 0]));
        let reach = Reachability::compute(&topo, &plan.mask_at(&topo, 0));
        // Ordered pairs among the 15 surviving nodes all remain routable.
        assert_eq!(reach.routable_pairs(), 15 * 14);
    }

    #[test]
    fn severed_line_splits_the_mesh() {
        let topo = Topology::mesh(&[2]);
        let mut plan = FaultPlan::new();
        plan.push_dead_link(topo.node_at(&[0]), Direction::new(0, Sign::Plus));
        let reach = Reachability::compute(&topo, &plan.mask_at(&topo, 0));
        assert!(!reach.routable(topo.node_at(&[0]), topo.node_at(&[1])));
        assert!(reach.routable(topo.node_at(&[1]), topo.node_at(&[0])));
        assert_eq!(reach.routable_pairs(), 1);
    }
}

//! Declarative fault plans: what fails, and when.

use crate::FaultRegion;
use serde::{Deserialize, Serialize};
use std::fmt;
use wormsim_topology::{ChannelMask, Direction, NodeId, Topology};
use wormsim_traffic::SimRng;

/// What a single fault kills.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultTarget {
    /// One unidirectional physical channel: the link leaving `node` in
    /// `direction`. The reverse channel is a separate target.
    Link {
        /// Source node of the channel.
        node: NodeId,
        /// Direction the channel travels.
        direction: Direction,
    },
    /// A whole node, including every channel incident to it.
    Node {
        /// The failing node.
        node: NodeId,
    },
}

impl fmt::Display for FaultTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultTarget::Link { node, direction } => {
                write!(f, "link {}{direction}", node.index())
            }
            FaultTarget::Node { node } => write!(f, "node {}", node.index()),
        }
    }
}

/// One fault: a target plus its failure window.
///
/// The fault is in effect from `fail_at` (inclusive) until `repair_at`
/// (exclusive); `repair_at: None` means the fault is permanent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fault {
    /// What fails.
    pub target: FaultTarget,
    /// First cycle the target is dead.
    pub fail_at: u64,
    /// First cycle the target is alive again, or `None` if never repaired.
    pub repair_at: Option<u64>,
}

impl Fault {
    /// Whether this fault is in effect at `cycle`.
    pub fn active_at(&self, cycle: u64) -> bool {
        self.fail_at <= cycle && self.repair_at.is_none_or(|r| r > cycle)
    }

    /// Whether this fault is static: dead from cycle 0, never repaired.
    pub fn is_static(&self) -> bool {
        self.fail_at == 0 && self.repair_at.is_none()
    }
}

/// Errors produced by [`FaultPlan::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultPlanError {
    /// A link fault names a channel slot that carries no physical link
    /// (a mesh boundary).
    NonexistentChannel {
        /// Source node of the missing channel.
        node: NodeId,
        /// Direction of the missing channel.
        direction: Direction,
    },
    /// A fault names a node outside the topology.
    NodeOutOfRange {
        /// The out-of-range node index.
        node: NodeId,
        /// Number of nodes in the topology.
        num_nodes: u32,
    },
    /// A fault's repair cycle is not after its failure cycle.
    RepairBeforeFailure {
        /// The offending fault's target.
        target: FaultTarget,
        /// Cycle the fault takes effect.
        fail_at: u64,
        /// The repair cycle that is not after `fail_at`.
        repair_at: u64,
    },
    /// Every node of the topology is statically dead: nothing can ever be
    /// simulated.
    AllNodesFaulted,
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::NonexistentChannel { node, direction } => write!(
                f,
                "fault on nonexistent channel: node {} has no link in direction {direction}",
                node.index()
            ),
            FaultPlanError::NodeOutOfRange { node, num_nodes } => write!(
                f,
                "fault on node {} but the topology has only {num_nodes} nodes",
                node.index()
            ),
            FaultPlanError::RepairBeforeFailure {
                target,
                fail_at,
                repair_at,
            } => write!(
                f,
                "{target} repairs at cycle {repair_at}, not after its failure at {fail_at}"
            ),
            FaultPlanError::AllNodesFaulted => {
                write!(f, "every node is statically faulted; nothing to simulate")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A set of [`Fault`]s applied to one simulated network.
///
/// Build a plan from explicit targets
/// ([`push_dead_link`](Self::push_dead_link),
/// [`push_dead_node`](Self::push_dead_node),
/// [`push`](Self::push) for transient windows) or sample one randomly
/// ([`random_links`](Self::random_links)). The simulator asks for the
/// [`ChannelMask`] in effect at each fault transition via
/// [`mask_at`](Self::mask_at).
///
/// # Example
///
/// ```
/// use wormsim_faults::{Fault, FaultPlan, FaultTarget};
/// use wormsim_topology::{Direction, Sign, Topology};
///
/// let topo = Topology::torus(&[4, 4]);
/// let mut plan = FaultPlan::new();
/// // One link dead for cycles 100..200, then repaired.
/// plan.push(Fault {
///     target: FaultTarget::Link {
///         node: topo.node_at(&[1, 2]),
///         direction: Direction::new(1, Sign::Minus),
///     },
///     fail_at: 100,
///     repair_at: Some(200),
/// });
/// plan.validate(&topo).unwrap();
/// assert_eq!(plan.transition_cycles(), vec![100, 200]);
/// assert!(plan.mask_at(&topo, 50).is_trivial());
/// assert_eq!(plan.mask_at(&topo, 150).dead_channel_count(), 1);
/// assert!(plan.mask_at(&topo, 200).is_trivial());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// Creates an empty plan (a healthy network).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of faults in the plan.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// The faults, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Adds a fault.
    pub fn push(&mut self, fault: Fault) {
        self.faults.push(fault);
    }

    /// Adds a link dead from cycle 0, never repaired.
    pub fn push_dead_link(&mut self, node: NodeId, direction: Direction) {
        self.push(Fault {
            target: FaultTarget::Link { node, direction },
            fail_at: 0,
            repair_at: None,
        });
    }

    /// Adds a node dead from cycle 0, never repaired.
    pub fn push_dead_node(&mut self, node: NodeId) {
        self.push(Fault {
            target: FaultTarget::Node { node },
            fail_at: 0,
            repair_at: None,
        });
    }

    /// Samples `count` distinct static link faults uniformly among the
    /// physical channels whose source node lies in `region`, using a
    /// dedicated deterministic RNG stream of `seed`.
    ///
    /// If the region contains fewer than `count` channels, all of them are
    /// used (check [`len`](Self::len) if that matters).
    pub fn random_links(topo: &Topology, count: usize, seed: u64, region: &FaultRegion) -> Self {
        let mut pool: Vec<(NodeId, Direction)> = Vec::new();
        for node in topo.nodes() {
            if !region.contains(topo, node) {
                continue;
            }
            for dir in Direction::all(topo.num_dims()) {
                if topo.has_channel(node, dir) {
                    pool.push((node, dir));
                }
            }
        }
        let count = count.min(pool.len());
        // Partial Fisher-Yates on its own stream keeps the draw independent
        // of every simulation stream.
        let mut rng = SimRng::stream(seed, 0xFA);
        let mut plan = FaultPlan::new();
        for i in 0..count {
            let j = i + rng.uniform_below((pool.len() - i) as u32) as usize;
            pool.swap(i, j);
            let (node, direction) = pool[i];
            plan.push_dead_link(node, direction);
        }
        plan
    }

    /// Checks the plan against a topology.
    ///
    /// # Errors
    ///
    /// Returns the first [`FaultPlanError`] found: a fault on a node
    /// outside the topology or on a mesh-boundary channel slot, a repair
    /// cycle not after its failure cycle, or a plan that statically kills
    /// every node.
    pub fn validate(&self, topo: &Topology) -> Result<(), FaultPlanError> {
        for fault in &self.faults {
            let node = match fault.target {
                FaultTarget::Link { node, .. } | FaultTarget::Node { node } => node,
            };
            if node.index() >= topo.num_nodes() {
                return Err(FaultPlanError::NodeOutOfRange {
                    node,
                    num_nodes: topo.num_nodes(),
                });
            }
            if let FaultTarget::Link { node, direction } = fault.target {
                if !topo.has_channel(node, direction) {
                    return Err(FaultPlanError::NonexistentChannel { node, direction });
                }
            }
            if let Some(repair_at) = fault.repair_at {
                if repair_at <= fault.fail_at {
                    return Err(FaultPlanError::RepairBeforeFailure {
                        target: fault.target,
                        fail_at: fault.fail_at,
                        repair_at,
                    });
                }
            }
        }
        let statically_dead = topo
            .nodes()
            .filter(|&n| {
                self.faults.iter().any(|f| {
                    f.is_static() && matches!(f.target, FaultTarget::Node { node } if node == n)
                })
            })
            .count() as u32;
        if statically_dead == topo.num_nodes() {
            return Err(FaultPlanError::AllNodesFaulted);
        }
        Ok(())
    }

    /// Whether all faults are static (in effect from cycle 0, forever).
    pub fn is_static(&self) -> bool {
        self.faults.iter().all(Fault::is_static)
    }

    /// The sorted, deduplicated cycles at which the fault mask changes
    /// (failures taking effect or repairs completing), excluding cycle 0 —
    /// the cycle-0 mask is applied before the simulation starts.
    pub fn transition_cycles(&self) -> Vec<u64> {
        let mut cycles: Vec<u64> = self
            .faults
            .iter()
            .flat_map(|f| [Some(f.fail_at), f.repair_at])
            .flatten()
            .filter(|&c| c > 0)
            .collect();
        cycles.sort_unstable();
        cycles.dedup();
        cycles
    }

    /// The [`ChannelMask`] in effect at `cycle`.
    pub fn mask_at(&self, topo: &Topology, cycle: u64) -> ChannelMask {
        let mut mask = ChannelMask::all_alive(topo);
        for fault in &self.faults {
            if !fault.active_at(cycle) {
                continue;
            }
            match fault.target {
                FaultTarget::Link { node, direction } => {
                    if topo.has_channel(node, direction) {
                        mask.kill_channel(topo.channel(node, direction));
                    }
                }
                FaultTarget::Node { node } => mask.kill_node(topo, node),
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormsim_topology::Sign;

    #[test]
    fn validation_catches_each_error() {
        let topo = Topology::mesh(&[4, 4]);
        let mut bad_link = FaultPlan::new();
        bad_link.push_dead_link(topo.node_at(&[0, 0]), Direction::new(0, Sign::Minus));
        assert!(matches!(
            bad_link.validate(&topo),
            Err(FaultPlanError::NonexistentChannel { .. })
        ));

        let mut bad_node = FaultPlan::new();
        bad_node.push_dead_node(NodeId::new(99));
        assert!(matches!(
            bad_node.validate(&topo),
            Err(FaultPlanError::NodeOutOfRange { num_nodes: 16, .. })
        ));

        let mut bad_repair = FaultPlan::new();
        bad_repair.push(Fault {
            target: FaultTarget::Node {
                node: topo.node_at(&[1, 1]),
            },
            fail_at: 10,
            repair_at: Some(10),
        });
        assert!(matches!(
            bad_repair.validate(&topo),
            Err(FaultPlanError::RepairBeforeFailure { .. })
        ));

        let mut all_dead = FaultPlan::new();
        for node in topo.nodes() {
            all_dead.push_dead_node(node);
        }
        assert_eq!(
            all_dead.validate(&topo),
            Err(FaultPlanError::AllNodesFaulted)
        );
    }

    #[test]
    fn random_links_is_deterministic_and_distinct() {
        let topo = Topology::torus(&[8, 8]);
        let a = FaultPlan::random_links(&topo, 10, 42, &FaultRegion::Anywhere);
        let b = FaultPlan::random_links(&topo, 10, 42, &FaultRegion::Anywhere);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        let mut targets: Vec<_> = a.faults().iter().map(|f| f.target).collect();
        targets.sort_by_key(|t| format!("{t:?}"));
        targets.dedup();
        assert_eq!(targets.len(), 10, "sampled faults must be distinct");
        let c = FaultPlan::random_links(&topo, 10, 43, &FaultRegion::Anywhere);
        assert_ne!(a, c, "different seeds give different draws");
    }

    #[test]
    fn random_links_respects_region_and_pool_size() {
        let topo = Topology::torus(&[8, 8]);
        let region = FaultRegion::coordinate_box(&[0, 0], &[2, 2]);
        let plan = FaultPlan::random_links(&topo, 1000, 7, &region);
        // 4 nodes in the box, 4 outgoing channels each.
        assert_eq!(plan.len(), 16);
        for fault in plan.faults() {
            match fault.target {
                FaultTarget::Link { node, .. } => {
                    assert!(region.contains(&topo, node));
                }
                FaultTarget::Node { .. } => panic!("random_links samples links only"),
            }
        }
    }

    #[test]
    fn transient_windows_drive_the_mask() {
        let topo = Topology::torus(&[4, 4]);
        let mut plan = FaultPlan::new();
        plan.push(Fault {
            target: FaultTarget::Node {
                node: topo.node_at(&[2, 2]),
            },
            fail_at: 500,
            repair_at: Some(900),
        });
        plan.push_dead_link(topo.node_at(&[0, 0]), Direction::new(0, Sign::Plus));
        assert!(!plan.is_static());
        assert_eq!(plan.transition_cycles(), vec![500, 900]);
        assert_eq!(plan.mask_at(&topo, 0).dead_channel_count(), 1);
        let mid = plan.mask_at(&topo, 500);
        assert_eq!(mid.dead_node_count(), 1);
        assert_eq!(mid.dead_channel_count(), 9);
        assert_eq!(plan.mask_at(&topo, 900).dead_channel_count(), 1);
    }
}

//! Link and node fault injection for wormhole-routing simulation.
//!
//! The paper studies healthy 16×16 tori; Boppana & Chalasani's follow-up
//! work extends the same algorithms to networks with failed links and
//! nodes. This crate makes failure a first-class simulated scenario:
//!
//! * [`FaultPlan`] — a declarative description of *which* channels/nodes
//!   fail and *when*: static faults (dead from cycle 0), transient faults
//!   (fail at a cycle, optionally repaired later), explicit lists, or
//!   seeded random sampling constrained to a [`FaultRegion`].
//! * [`FaultPlan::mask_at`] — the
//!   [`ChannelMask`](wormsim_topology::ChannelMask) of dead channels/nodes
//!   in effect at a given cycle, for the engine to apply at fault
//!   transitions.
//! * [`Reachability`] — all-pairs reachability over the surviving
//!   subgraph, so traffic generation can exclude unreachable pairs instead
//!   of letting them silently time out.
//!
//! # Example
//!
//! ```
//! use wormsim_faults::{FaultPlan, Reachability};
//! use wormsim_topology::{Direction, Sign, Topology};
//!
//! let topo = Topology::torus(&[4, 4]);
//! let mut plan = FaultPlan::new();
//! plan.push_dead_link(topo.node_at(&[0, 0]), Direction::new(0, Sign::Plus));
//! plan.validate(&topo)?;
//!
//! let mask = plan.mask_at(&topo, 0);
//! assert_eq!(mask.dead_channel_count(), 1);
//! // A single dead link on a torus leaves every pair routable.
//! let reach = Reachability::compute(&topo, &mask);
//! assert!(reach.all_pairs_routable());
//! # Ok::<(), wormsim_faults::FaultPlanError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod plan;
mod reach;
mod region;

pub use plan::{Fault, FaultPlan, FaultPlanError, FaultTarget};
pub use reach::Reachability;
pub use region::FaultRegion;

//! Spatial constraints for randomly sampled faults.

use serde::{Deserialize, Serialize};
use wormsim_topology::{NodeId, Topology};

/// Where randomly sampled faults may land.
///
/// Fault-tolerant routing results usually assume failures are clustered in
/// a *convex* region (a coordinate box) rather than scattered arbitrarily;
/// `Box` models that assumption, `Anywhere` drops it.
///
/// # Example
///
/// ```
/// use wormsim_faults::FaultRegion;
/// use wormsim_topology::Topology;
///
/// let topo = Topology::torus(&[8, 8]);
/// let region = FaultRegion::coordinate_box(&[6, 6], &[3, 3]);
/// // The box wraps around the torus dateline: (0, 0) is inside.
/// assert!(region.contains(&topo, topo.node_at(&[0, 0])));
/// assert!(!region.contains(&topo, topo.node_at(&[3, 3])));
/// assert!(FaultRegion::Anywhere.contains(&topo, topo.node_at(&[3, 3])));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultRegion {
    /// No spatial constraint.
    Anywhere,
    /// A convex coordinate box: in each dimension `d`, a node is inside iff
    /// its coordinate lies in `origin[d] .. origin[d] + extent[d]`
    /// (wrapping around the radix on a torus).
    Box {
        /// Lowest corner of the box, one coordinate per dimension.
        origin: Vec<u16>,
        /// Size of the box in each dimension (≥ 1 to be non-empty).
        extent: Vec<u16>,
    },
}

impl FaultRegion {
    /// Convenience constructor for [`FaultRegion::Box`].
    pub fn coordinate_box(origin: &[u16], extent: &[u16]) -> Self {
        FaultRegion::Box {
            origin: origin.to_vec(),
            extent: extent.to_vec(),
        }
    }

    /// Whether `node` lies inside this region on `topo`.
    ///
    /// # Panics
    ///
    /// Panics for `Box` if the origin/extent dimension count differs from
    /// the topology's.
    pub fn contains(&self, topo: &Topology, node: NodeId) -> bool {
        match self {
            FaultRegion::Anywhere => true,
            FaultRegion::Box { origin, extent } => {
                assert_eq!(
                    origin.len(),
                    topo.num_dims(),
                    "region dimensions must match the topology"
                );
                assert_eq!(
                    extent.len(),
                    topo.num_dims(),
                    "region dimensions must match the topology"
                );
                (0..topo.num_dims()).all(|d| {
                    let k = topo.radix(d);
                    let c = topo.coord(node, d);
                    let offset = if topo.wraps() {
                        (c + k - origin[d] % k) % k
                    } else if c >= origin[d] {
                        c - origin[d]
                    } else {
                        return false;
                    };
                    offset < extent[d]
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_is_convex_on_mesh() {
        let topo = Topology::mesh(&[8, 8]);
        let region = FaultRegion::coordinate_box(&[2, 2], &[3, 3]);
        let inside: u32 = topo.nodes().filter(|&n| region.contains(&topo, n)).count() as u32;
        assert_eq!(inside, 9);
        assert!(region.contains(&topo, topo.node_at(&[4, 4])));
        assert!(!region.contains(&topo, topo.node_at(&[5, 2])));
        // A mesh box never wraps.
        let edge = FaultRegion::coordinate_box(&[6, 0], &[4, 1]);
        assert!(!edge.contains(&topo, topo.node_at(&[0, 0])));
    }

    #[test]
    fn box_wraps_on_torus() {
        let topo = Topology::torus(&[8, 8]);
        let region = FaultRegion::coordinate_box(&[7, 7], &[2, 2]);
        for coords in [[7, 7], [0, 7], [7, 0], [0, 0]] {
            assert!(region.contains(&topo, topo.node_at(&coords)), "{coords:?}");
        }
        assert!(!region.contains(&topo, topo.node_at(&[1, 1])));
    }
}

//! Value-generation strategies: the `Strategy` trait and the combinators the
//! wormsim test suites use.

use crate::test_runner::TestRng;

/// A recipe for generating pseudo-random values of one type.
///
/// Unlike upstream proptest there is no shrinking, so a strategy is just a
/// generator: `generate` must be deterministic given the RNG stream.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    /// Builds a second strategy from each generated value and draws from it.
    fn prop_flat_map<S, F>(self, flat: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, flat }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Copy, Debug)]
pub struct FlatMap<S, F> {
    source: S,
    flat: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.flat)(self.source.generate(rng)).generate(rng)
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over the given alternatives. Panics if empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain: every draw is in range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                lo.wrapping_add(rng.below(span.wrapping_add(1)) as $t)
            }
        }
    )+};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! tuple_strategy {
    ($($S:ident),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($S,)+) = self;
                ($($S.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Full-domain strategy for an [`Arbitrary`] type.
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// `any::<T>()`: every value of `T` is possible.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniform choice between alternative strategies producing the same type.
///
/// Weights are not supported; every alternative is equiprobable.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

//! A small, self-contained property-testing engine exposing the subset of
//! the `proptest` crate's surface that the wormsim test suites use.
//!
//! The workspace builds in fully offline environments, so the real proptest
//! cannot be fetched; rather than gut the property suites, this shim really
//! runs them: strategies generate pseudo-random values, `prop_assume!`
//! rejections are re-drawn, and failures panic with the assertion message and
//! the failing case's seed. Differences from upstream proptest, by design:
//!
//! * **No shrinking.** A failure reports the first counterexample found,
//!   which may be large and noisy where upstream would minimize it.
//! * **Narrower input distribution.** Draws are plain uniform over each
//!   strategy's range; upstream biases toward edge cases (zero, extremes,
//!   boundary values), so a passing run here is weaker evidence than the same
//!   run under real proptest. Re-run the suites against the crates.io
//!   proptest whenever network access is available.
//! * **Deterministic seeding.** Each test derives its RNG stream from the
//!   test-function name, so failures reproduce exactly across runs; set
//!   `PROPTEST_SEED=<n>` to explore a different stream.
//! * `proptest-regressions` files are ignored.
//!
//! Supported surface: `proptest! { #![proptest_config(...)] fn f(pat in
//! strategy, ...) {...} }`, `Strategy` with `prop_map`/`prop_flat_map`/
//! `boxed`, tuple strategies, integer/float range strategies, `Just`,
//! `any::<T>()`, `prop_oneof!`, `prop::bool::ANY`, `prop::collection::vec`,
//! and the `prop_assert*`/`prop_assume!` macros.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive range of collection sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)`: vectors whose length is drawn
    /// from `size` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec` / `prop::bool::ANY` resolve
/// after `use proptest::prelude::*`.
pub mod prop {
    pub use crate::collection;

    /// Boolean strategies.
    pub mod bool {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy yielding uniformly random booleans.
        #[derive(Clone, Copy, Debug)]
        pub struct BoolAny;

        /// Any boolean, equiprobably.
        pub const ANY: BoolAny = BoolAny;

        impl Strategy for BoolAny {
            type Value = bool;

            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

//! The case runner behind the `proptest!` macro: configuration, RNG,
//! rejection handling, and failure reporting.

use crate::strategy::Strategy;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each test must run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case's preconditions failed (`prop_assume!`); draw a new input.
    Reject(String),
    /// An assertion failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds a rejection (see [`TestCaseError::Reject`]).
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }

    /// Builds a failure (see [`TestCaseError::Fail`]).
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }
}

/// Splitmix64 generator: tiny, fast, and plenty for test-input generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream for one named test, honoring `PROPTEST_SEED`.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name keeps streams distinct per test while
        // staying reproducible run-to-run.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let salt = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        TestRng {
            state: hash ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }

    /// Uniform draw in `[0, 1)` with 53-bit precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Drives one property: draws inputs, re-draws on rejection, and panics with
/// the case's message on failure. Called by the `proptest!` expansion.
///
/// Unlike upstream proptest there is no edge-case biasing and no shrinking
/// (see the crate docs for the coverage tradeoff), so this loop is a plain
/// draw-check-repeat over uniform inputs.
pub fn run_cases<S, F>(config: &ProptestConfig, name: &str, strategy: S, mut body: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::for_test(name);
    let max_rejects = 4096 + u64::from(config.cases) * 256;
    let mut executed = 0u32;
    let mut rejected = 0u64;
    while executed < config.cases {
        let value = strategy.generate(&mut rng);
        match body(value) {
            Ok(()) => executed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "property `{name}` rejected {rejected} inputs \
                     (prop_assume! too strict for its strategy)"
                );
            }
            Err(TestCaseError::Fail(message)) => panic!(
                "property `{name}` failed on case {executed} \
                 (set PROPTEST_SEED to vary inputs): {message}"
            ),
        }
    }
}

/// Declares property tests. Mirrors upstream proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn it_holds(x in 0u32..100, (a, b) in arb_pair()) { prop_assert!(x < 100); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            $crate::test_runner::run_cases(
                &config,
                stringify!($name),
                ($($strategy,)+),
                |($($arg,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// Asserts inside a `proptest!` body; failure fails only the current case's
/// test with a report, via an early `return`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}", left, right, format!($($fmt)+)
        );
    }};
}

/// Inequality assertion for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`: {}", left, right, format!($($fmt)+)
        );
    }};
}

/// Rejects the current case unless `cond` holds; the runner draws new inputs
/// instead of failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(format!($($fmt)+)),
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -5i64..=5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec(0u64..100, 1..8),
            flag in prop::bool::ANY,
            pair in (0u8..4).prop_flat_map(|n| (Just(n), 0u8..4)),
            choice in prop_oneof![Just(1u8), Just(2u8), (10u8..=12).prop_map(|x| x)],
        ) {
            prop_assume!(!v.is_empty());
            prop_assert!(v.iter().all(|&x| x < 100));
            prop_assert!(pair.0 < 4 && pair.1 < 4);
            prop_assert!(matches!(choice, 1 | 2 | 10..=12));
            prop_assert_ne!(v.len(), 0);
            let _ = flag;
        }
    }
}

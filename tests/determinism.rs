//! Determinism regression: pins the engine's bit-identical guarantee.
//!
//! Two layers of goldens, both produced with seed 1993:
//!
//! * raw engine [`Metrics`](wormsim::engine::Metrics) after a fixed-length
//!   fig3 run, one snapshot per routing algorithm, and
//! * full [`RunResult`]s for one quick point of each of the paper's
//!   fig3/fig4/fig5 presets (timing fields zeroed — wall-clock speed is the
//!   only non-deterministic part of a run).
//!
//! Any engine change that alters RNG consumption order, phase ordering, or
//! arbitration behavior shows up here as a golden mismatch. Deliberate
//! semantic changes regenerate the goldens with
//! `WORMSIM_UPDATE_GOLDEN=1 cargo test --test determinism`.

use wormsim::observe::JsonObject;
use wormsim::presets;
use wormsim::stats::throughput;
use wormsim::topology::Topology;
use wormsim::{
    AlgorithmKind, ArrivalProcess, Experiment, MessageLength, NetworkBuilder, RunResult,
    TrafficConfig,
};

const SEED: u64 = 1993;
const LOAD: f64 = 0.2;

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `actual` against the committed golden, or rewrites the golden
/// when `WORMSIM_UPDATE_GOLDEN=1`.
fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("WORMSIM_UPDATE_GOLDEN").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("golden dir creates");
        std::fs::write(&path, actual).expect("golden writes");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with WORMSIM_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "engine output diverged from the committed golden {name}; if the \
         change is intentional, regenerate with WORMSIM_UPDATE_GOLDEN=1"
    );
}

/// Builds the fig3 network (16×16 torus, uniform 16-flit worms) at the
/// golden load for one algorithm, exactly as `Experiment::run` would.
fn fig3_network(algorithm: AlgorithmKind) -> wormsim::engine::Network {
    let topo: Topology = presets::paper_topology();
    let pattern = TrafficConfig::Uniform.build(&topo).expect("uniform builds");
    let rate =
        throughput::rate_for_utilization(LOAD, 16.0, pattern.mean_distance(&topo), topo.num_dims());
    NetworkBuilder::new(topo, algorithm)
        .traffic(TrafficConfig::Uniform)
        .arrival(ArrivalProcess::geometric(rate).expect("valid rate"))
        .message_length(MessageLength::fixed(16).expect("valid length"))
        .seed(SEED)
        .build()
        .expect("network builds")
}

fn metrics_json(algorithm: &str, net: &wormsim::engine::Network) -> String {
    let m = net.metrics();
    let mut out = String::new();
    let mut obj = JsonObject::begin(&mut out);
    obj.field_str("algorithm", algorithm)
        .field_u64("cycles", m.cycles)
        .field_u64("generated", m.generated)
        .field_u64("refused", m.refused)
        .field_u64("delivered", m.delivered)
        .field_u64("flit_hops", m.flit_hops)
        .field_u64("flits_injected", m.flits_injected)
        .field_u64("flits_ejected", m.flits_ejected)
        .field_u64("flits_in_flight", net.flits_in_flight())
        .field_u64("live_messages", net.live_messages() as u64)
        .field_u64_array("class_flits", &m.class_flits);
    obj.finish();
    out
}

fn run_result_json(r: &RunResult) -> String {
    let mut out = String::new();
    let mut obj = JsonObject::begin(&mut out);
    obj.field_str("algorithm", &r.algorithm)
        .field_str("traffic", &r.traffic)
        .field_f64("offered_load", r.offered_load)
        .field_f64("injection_rate", r.injection_rate)
        .field_f64("latency_mean", r.latency.mean())
        .field_f64("latency_half_width", r.latency.half_width())
        .field_u64_array("latency_percentiles", &r.latency_percentiles)
        .field_u64("latency_max", r.latency_max)
        .field_f64("achieved_utilization", r.achieved_utilization)
        .field_f64("delivery_rate", r.delivery_rate)
        .field_f64("acceptance_rate", r.acceptance_rate)
        .field_f64("refused_fraction", r.refused_fraction)
        .field_u64("messages_measured", r.messages_measured)
        .field_str("convergence", &format!("{:?}", r.convergence))
        .field_u64("samples", r.samples as u64)
        .field_u64("cycles_simulated", r.cycles_simulated)
        .field_bool("deadlocked", r.deadlock.is_some());
    let classes: Vec<String> = r
        .class_latencies
        .iter()
        .map(|c| {
            let mut s = String::new();
            let mut o = JsonObject::begin(&mut s);
            o.field_u64("hops", c.hops as u64)
                .field_u64("count", c.count)
                .field_f64("mean", c.mean);
            o.finish();
            s
        })
        .collect();
    obj.field_raw("class_latencies", &format!("[{}]", classes.join(",")));
    obj.finish();
    out
}

/// One fig3 quick point per algorithm, seed 1993: the raw engine counters
/// must be bit-identical run over run and release over release.
#[test]
fn fig3_metrics_match_golden() {
    let mut lines = Vec::new();
    for algorithm in presets::paper_algorithms() {
        let mut net = fig3_network(algorithm);
        // One quick sampling period's worth of cycles: warmup + sample.
        net.run(3_000);
        lines.push(metrics_json(algorithm.name(), &net));
    }
    let mut snapshot = lines.join("\n");
    snapshot.push('\n');
    assert_matches_golden("fig3_metrics_seed1993.jsonl", &snapshot);
}

/// Installing the deep-telemetry registry must not perturb the
/// simulation: the metrics-enabled run reproduces the metrics-off golden
/// bit for bit (the registry is pure counters and timers — no RNG draws,
/// no ordering changes).
#[test]
fn fig3_metrics_match_golden_with_metrics_enabled() {
    let mut lines = Vec::new();
    for algorithm in presets::paper_algorithms() {
        let mut net = fig3_network(algorithm);
        net.observer().metrics_on();
        net.run(3_000);
        let registry = net.metrics_registry().expect("registry installed");
        assert_eq!(registry.cycles, 3_000, "registry saw every cycle");
        assert_eq!(
            registry.latency.count(),
            net.metrics().delivered,
            "one latency observation per delivered message"
        );
        lines.push(metrics_json(algorithm.name(), &net));
    }
    let mut snapshot = lines.join("\n");
    snapshot.push('\n');
    assert_matches_golden("fig3_metrics_seed1993.jsonl", &snapshot);
}

/// One quick point of each figure preset through the full `Experiment`
/// pipeline: latency/throughput estimates must be bit-identical.
#[test]
fn figure_quick_run_results_match_golden() {
    let mut lines = Vec::new();
    for spec in [presets::fig3(), presets::fig4(), presets::fig5()] {
        for algorithm in [AlgorithmKind::Ecube, AlgorithmKind::NegativeHopBonusCards] {
            let mut result = Experiment::new(spec.topology.clone(), algorithm)
                .traffic(spec.traffic.clone())
                .switching(spec.switching)
                .offered_load(LOAD)
                .quick()
                .seed(SEED)
                .run()
                .expect("quick point runs");
            // Wall-clock speed is the one legitimately non-deterministic
            // part of a run; everything else must reproduce exactly.
            result.wall_seconds = 0.0;
            result.cycles_per_sec = 0.0;
            let mut line = String::new();
            line.push_str(&spec.id);
            line.push(' ');
            line.push_str(&run_result_json(&result));
            lines.push(line);
        }
    }
    let mut snapshot = lines.join("\n");
    snapshot.push('\n');
    assert_matches_golden("figures_quick_seed1993.jsonl", &snapshot);
}

/// Large-network determinism: raw engine counters on a 32×32 torus (1024
/// nodes) and an 8-ary 3-cube (512 nodes), pinned bit-for-bit. The 3D
/// point also pins the n≥3 variants of 2pn (travel-sign tags × dateline
/// levels) and nlast (per-dimension north gating), which the 16×16 fig3
/// golden cannot see.
#[test]
fn large_network_metrics_match_golden() {
    let mut lines = Vec::new();
    for topo in [Topology::torus(&[32, 32]), Topology::k_ary_n_cube(8, 3)] {
        for algorithm in [
            AlgorithmKind::Ecube,
            AlgorithmKind::NegativeHopBonusCards,
            AlgorithmKind::TwoPowerN,
            AlgorithmKind::NorthLast,
        ] {
            let pattern = TrafficConfig::Uniform.build(&topo).expect("uniform builds");
            let rate = throughput::rate_for_utilization(
                LOAD,
                16.0,
                pattern.mean_distance(&topo),
                topo.num_dims(),
            );
            let mut net = NetworkBuilder::new(topo.clone(), algorithm)
                .arrival(ArrivalProcess::geometric(rate).expect("valid rate"))
                .message_length(MessageLength::fixed(16).expect("valid length"))
                .seed(SEED)
                .build()
                .expect("network builds");
            net.run(1_500);
            let mut line = String::new();
            line.push_str(&topo.label());
            line.push(' ');
            line.push_str(&metrics_json(algorithm.name(), &net));
            lines.push(line);
        }
    }
    let mut snapshot = lines.join("\n");
    snapshot.push('\n');
    assert_matches_golden("scaling_metrics_seed1993.jsonl", &snapshot);
}

/// The same experiment run twice in-process gives identical results — the
/// goldens above then extend that equality across builds.
#[test]
fn repeated_runs_are_identical() {
    let run = || {
        let mut r = Experiment::new(Topology::torus(&[8, 8]), AlgorithmKind::PositiveHop)
            .offered_load(0.3)
            .quick()
            .seed(SEED)
            .run()
            .expect("runs");
        r.wall_seconds = 0.0;
        r.cycles_per_sec = 0.0;
        run_result_json(&r)
    };
    assert_eq!(run(), run());
}

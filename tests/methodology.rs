//! Integration tests of the measurement methodology: Equations 2–4, the
//! stratified estimator's weights, presets, and report formats — the glue
//! between the engine and the statistics.

use wormsim::{
    format_sweep_csv, presets, AlgorithmKind, Experiment, MeasurementSchedule, Topology,
    TrafficConfig,
};

/// Equation 4 round trip: the injection rate the experiment derives
/// reproduces the offered load exactly for every preset workload.
#[test]
fn offered_load_rate_roundtrip() {
    let topo = presets::paper_topology();
    for spec in presets::all_figures() {
        let pattern = spec.traffic.build(&topo).expect("pattern builds");
        let d_bar = pattern.mean_distance(&topo);
        for load in [0.1, 0.5, 1.0] {
            let e = Experiment::new(topo.clone(), AlgorithmKind::Ecube)
                .traffic(spec.traffic.clone())
                .offered_load(load);
            let rate = e.injection_rate().expect("valid rate");
            let back = wormsim::stats::throughput::utilization_from_rate(rate, 16.0, d_bar, 2);
            assert!((back - load).abs() < 1e-12, "{}: {back} vs {load}", spec.id);
        }
    }
}

/// The paper's quoted stratification weights come out of the preset
/// patterns exactly.
#[test]
fn paper_quoted_hop_class_weights() {
    let topo = presets::paper_topology();
    // Uniform: class 1 weighs 0.0157, class 16 weighs 0.0039.
    let uniform = TrafficConfig::Uniform.build(&topo).expect("uniform builds");
    let w = uniform.hop_class_weights(&topo);
    assert!((w[1] - 0.0157).abs() < 2e-4);
    assert!((w[16] - 0.0039).abs() < 1e-4);
    // Local: six classes with weights 0.0833/0.1667/0.25 mirrored.
    let local = presets::fig5().traffic.build(&topo).expect("local builds");
    let w = local.hop_class_weights(&topo);
    assert!((w[1] - 0.0833).abs() < 1e-3);
    assert!((w[3] - 0.25).abs() < 1e-9);
    assert_eq!(w.iter().filter(|&&x| x > 0.0).count(), 6);
}

/// The hotspot preset gives the hotspot node 11.5x the traffic of others,
/// as quoted in Section 3.
#[test]
fn paper_quoted_hotspot_ratio() {
    let topo = presets::paper_topology();
    let pattern = presets::fig4()
        .traffic
        .build(&topo)
        .expect("hotspot builds");
    let dist = pattern.dest_distribution(topo.node_at(&[0, 0]));
    let hot = dist[topo.node_at(&[15, 15]).as_usize()];
    let other = dist[topo.node_at(&[7, 7]).as_usize()];
    assert!((hot / other - 11.5).abs() < 0.2, "ratio {}", hot / other);
}

/// A run's convergence accounting is internally consistent.
#[test]
fn convergence_accounting() {
    let r = Experiment::new(
        Topology::torus(&[8, 8]),
        AlgorithmKind::NegativeHopBonusCards,
    )
    .schedule(MeasurementSchedule::quick())
    .offered_load(0.2)
    .seed(5)
    .run()
    .expect("experiment runs");
    let schedule = MeasurementSchedule::quick();
    assert!(r.samples >= schedule.policy.min_samples);
    assert!(r.samples <= schedule.policy.max_samples);
    assert!(r.cycles_simulated <= schedule.max_cycles());
    assert!(r.cycles_simulated >= schedule.warmup_cycles + schedule.sample_cycles);
    assert!(r.messages_measured > 0);
    if r.is_converged() {
        assert!(r.latency.relative_error() <= schedule.policy.relative_tolerance);
    }
}

/// Sweeps serialize to CSV with one row per point and parseable numbers.
#[test]
fn sweep_csv_is_well_formed() {
    let results = Experiment::new(Topology::torus(&[8, 8]), AlgorithmKind::Ecube)
        .schedule(MeasurementSchedule::quick())
        .seed(1)
        .sweep(&[0.1, 0.2])
        .expect("sweep runs");
    let csv = format_sweep_csv(&results);
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 3);
    for row in &lines[1..] {
        let fields: Vec<&str> = row.split(',').collect();
        assert_eq!(fields.len(), lines[0].split(',').count());
        assert!(fields[2].parse::<f64>().is_ok(), "offered load parses");
        assert!(fields[5].parse::<f64>().is_ok(), "latency parses");
    }
}

/// Every figure preset builds and expands into runnable experiments whose
/// injection rates are feasible.
#[test]
fn presets_are_feasible() {
    for spec in presets::all_figures() {
        let experiments = presets::experiments_for(&spec, MeasurementSchedule::quick(), 1);
        assert_eq!(
            experiments.len(),
            spec.algorithms.len() * spec.loads.len(),
            "{}",
            spec.id
        );
        for e in &experiments {
            let rate = e.injection_rate().expect("feasible rate");
            // Uniform traffic needs at most ~0.031 msgs/node/cycle at full
            // load; local traffic's short paths push that up to ~0.071.
            assert!(
                rate > 0.0 && rate < 0.08,
                "rate {rate} plausible for 16-flit worms"
            );
        }
    }
}

/// The naive strawman's deadlock surfaces through the whole stack as a
/// non-converged result with a deadlock report.
#[test]
fn deadlock_reported_through_experiment_layer() {
    let r = Experiment::new(Topology::torus(&[8, 8]), AlgorithmKind::NaiveMinimal)
        .schedule(MeasurementSchedule::quick())
        .offered_load(1.0)
        .seed(3)
        .run()
        .expect("run completes even when the network wedges");
    // With overload and the quick watchdog the naive net wedges reliably.
    if let Some(report) = r.deadlock {
        assert!(report.flits_in_flight > 0);
        assert!(!r.is_converged());
    } else {
        // Even if this seed escaped, throughput must be far below offered.
        assert!(r.achieved_utilization < 0.5);
    }
}

//! Cross-crate integration tests: the paper's qualitative findings on a
//! reduced (8x8) torus with the quick measurement schedule, exercising the
//! full public API path (topology -> routing -> traffic -> engine -> stats
//! -> experiment).

use wormsim::{AlgorithmKind, Experiment, MeasurementSchedule, Switching, Topology, TrafficConfig};

fn quick(algorithm: AlgorithmKind) -> Experiment {
    Experiment::new(Topology::torus(&[8, 8]), algorithm)
        .traffic(TrafficConfig::Uniform)
        .schedule(MeasurementSchedule::quick())
        .seed(2024)
}

/// The headline finding: the hop schemes sustain far more throughput than
/// e-cube and north-last; north-last never beats e-cube.
#[test]
fn hop_schemes_beat_the_rest() {
    let util = |algorithm: AlgorithmKind| {
        quick(algorithm)
            .offered_load(0.7)
            .run()
            .expect("experiment runs")
            .achieved_utilization
    };
    let phop = util(AlgorithmKind::PositiveHop);
    let nbc = util(AlgorithmKind::NegativeHopBonusCards);
    let ecube = util(AlgorithmKind::Ecube);
    let nlast = util(AlgorithmKind::NorthLast);

    assert!(
        phop > 1.4 * ecube,
        "phop ({phop:.3}) should dominate e-cube ({ecube:.3})"
    );
    assert!(
        nbc > 1.4 * ecube,
        "nbc ({nbc:.3}) should dominate e-cube ({ecube:.3})"
    );
    assert!(
        nlast <= ecube + 0.05,
        "north-last ({nlast:.3}) must not beat e-cube ({ecube:.3})"
    );
}

/// At low load every algorithm delivers near the zero-load latency and
/// achieves the offered throughput.
#[test]
fn low_load_all_algorithms_agree() {
    // Zero-load latency on 8^2 uniform: 16 + 4.06 - 1 ≈ 19.1 cycles.
    for algorithm in AlgorithmKind::all() {
        let r = quick(algorithm)
            .offered_load(0.1)
            .run()
            .expect("experiment runs");
        assert!(
            (19.0..26.0).contains(&r.latency.mean()),
            "{algorithm}: low-load latency {}",
            r.latency.mean()
        );
        assert!(
            (r.achieved_utilization - 0.1).abs() < 0.03,
            "{algorithm}: achieved {} at offered 0.1",
            r.achieved_utilization
        );
        assert!(r.deadlock.is_none());
    }
}

/// The Section 3.4 cross-check: under virtual cut-through the 2pn
/// algorithm catches up — its throughput clearly improves over its own
/// wormhole result, and the gap to nbc narrows.
#[test]
fn cut_through_rehabilitates_2pn() {
    let run = |algorithm: AlgorithmKind, switching: Switching| {
        quick(algorithm)
            .switching(switching)
            .offered_load(0.6)
            .run()
            .expect("experiment runs")
            .achieved_utilization
    };
    let tpn_wh = run(AlgorithmKind::TwoPowerN, Switching::wormhole());
    let tpn_vct = run(AlgorithmKind::TwoPowerN, Switching::VirtualCutThrough);
    let nbc_vct = run(
        AlgorithmKind::NegativeHopBonusCards,
        Switching::VirtualCutThrough,
    );
    assert!(
        tpn_vct > tpn_wh + 0.05,
        "cut-through should lift 2pn: wh {tpn_wh:.3}, vct {tpn_vct:.3}"
    );
    assert!(
        tpn_vct > 0.75 * nbc_vct,
        "under VCT 2pn ({tpn_vct:.3}) performs close to nbc ({nbc_vct:.3})"
    );
}

/// Experiments are bit-reproducible for a fixed seed and diverge across
/// seeds.
#[test]
fn experiments_are_reproducible() {
    let run = |seed: u64| {
        let r = quick(AlgorithmKind::NegativeHop)
            .offered_load(0.3)
            .seed(seed)
            .run()
            .expect("experiment runs");
        (
            r.latency.mean(),
            r.achieved_utilization,
            r.messages_measured,
        )
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8));
}

/// Store-and-forward pays per-hop serialization: its low-load latency is a
/// multiple of wormhole's, as the switching-technique comparison in the
/// introduction describes.
#[test]
fn store_and_forward_latency_multiplier() {
    let latency = |switching: Switching| {
        quick(AlgorithmKind::Ecube)
            .switching(switching)
            .offered_load(0.05)
            .run()
            .expect("experiment runs")
            .latency
            .mean()
    };
    let wormhole = latency(Switching::wormhole());
    let saf = latency(Switching::StoreAndForward);
    // d * m_l versus m_l + d - 1: about 3.4x at d̄ ≈ 4, m_l = 16.
    assert!(
        saf > 2.5 * wormhole,
        "store-and-forward ({saf:.1}) vs wormhole ({wormhole:.1})"
    );
}

/// Congestion control keeps saturation latency bounded: even at offered
/// load 1.0 the average latency stays within a small multiple of zero-load,
/// the paper's argument for input buffer limits.
#[test]
fn congestion_control_bounds_saturation_latency() {
    let r = quick(AlgorithmKind::PositiveHop)
        .offered_load(1.0)
        .run()
        .expect("experiment runs");
    assert!(r.refused_fraction > 0.05, "saturation must refuse messages");
    assert!(
        r.latency.mean() < 40.0 * 19.0,
        "saturation latency {} should stay bounded",
        r.latency.mean()
    );
    assert!(r.deadlock.is_none());
}

//! Fault-injection integration tests.
//!
//! Two guarantees are pinned here:
//!
//! * **Termination**: a deadlock-prone algorithm under load ends with
//!   [`RunOutcome::Deadlocked`] in bounded time — the watchdog converts a
//!   wedged network into a result instead of a hung test suite.
//! * **Determinism**: a run with transient (fail-then-repair) faults is
//!   bit-identical under a pinned seed, golden-checked alongside the
//!   zero-fault goldens in `tests/determinism.rs`. Regenerate deliberately
//!   changed goldens with `WORMSIM_UPDATE_GOLDEN=1 cargo test --test faults`.

use wormsim::faults::{Fault, FaultPlan, FaultRegion, FaultTarget};
use wormsim::observe::{json, JsonObject, ObserveConfig, WaitForSnapshot, WaitKind};
use wormsim::topology::{Direction, Sign, Topology};
use wormsim::{AlgorithmKind, Experiment, RunOutcome, RunResult};

const SEED: u64 = 1993;

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("WORMSIM_UPDATE_GOLDEN").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("golden dir creates");
        std::fs::write(&path, actual).expect("golden writes");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with WORMSIM_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "fault-mode output diverged from the committed golden {name}; if the \
         change is intentional, regenerate with WORMSIM_UPDATE_GOLDEN=1"
    );
}

fn fault_result_json(r: &RunResult) -> String {
    let mut out = String::new();
    let mut obj = JsonObject::begin(&mut out);
    obj.field_str("algorithm", &r.algorithm)
        .field_str("outcome", r.outcome.tag())
        .field_f64("latency_mean", r.latency.mean())
        .field_u64_array("latency_percentiles", &r.latency_percentiles)
        .field_u64("latency_max", r.latency_max)
        .field_f64("achieved_utilization", r.achieved_utilization)
        .field_f64("delivery_rate", r.delivery_rate)
        .field_u64("messages_measured", r.messages_measured)
        .field_u64("samples", r.samples as u64)
        .field_u64("cycles_simulated", r.cycles_simulated)
        .field_u64("dropped_events", r.dropped_events);
    obj.finish();
    out
}

/// A transient plan on the 8×8 torus: four random static link kills plus
/// one link that dies mid-measurement and is later repaired.
fn transient_plan(topo: &Topology) -> FaultPlan {
    let mut plan = FaultPlan::random_links(topo, 4, SEED, &FaultRegion::Anywhere);
    plan.push(Fault {
        target: FaultTarget::Link {
            node: topo.node_at(&[3, 3]),
            direction: Direction::new(1, Sign::Plus),
        },
        fail_at: 2_000,
        repair_at: Some(4_000),
    });
    plan
}

/// The deadlock watchdog must turn a wedged run into a
/// `RunOutcome::Deadlocked` result, never a hang: the deliberately
/// deadlock-prone naive algorithm on a dense torus under heavy load wedges
/// within the quick schedule once the watchdog window is tightened.
#[test]
fn naive_minimal_under_load_reports_deadlock_not_a_hang() {
    let result = Experiment::new(Topology::torus(&[4, 4]), AlgorithmKind::NaiveMinimal)
        .offered_load(0.7)
        .congestion_limit(None)
        .quick()
        .watchdog_cycles(1_000)
        .seed(SEED)
        .run()
        .expect("configuration is valid; deadlock is a result, not an error");
    assert_eq!(result.outcome, RunOutcome::Deadlocked);
    let report = result.deadlock.expect("outcome implies a report");
    assert!(report.flits_in_flight > 0);
    assert!(!result.is_converged());
    // The stall is triaged inline: a genuine deadlock carries a validated
    // circular wait, refining the watchdog's budget-based verdict.
    let triage = result.triage.expect("stalled runs are always triaged");
    assert!(triage.is_confirmed_unsafe());
    assert!(triage.cycle_messages.len() >= 2);
}

/// A deadlocked observed run must leave forensic evidence: the
/// `waitfor.jsonl` snapshot's wait-for graph contains a concrete channel
/// cycle — proof the watchdog fired on a real deadlock, not congestion.
#[test]
fn deadlocked_run_exports_wait_for_cycle_evidence() {
    let dir = std::env::temp_dir().join(format!("wormsim-waitfor-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let result = Experiment::new(Topology::torus(&[4, 4]), AlgorithmKind::NaiveMinimal)
        .offered_load(0.7)
        .congestion_limit(None)
        .quick()
        .watchdog_cycles(1_000)
        .seed(SEED)
        .observe(ObserveConfig {
            out_dir: Some(dir.clone()),
            prefix: "wf".to_owned(),
            metrics: true,
            ..ObserveConfig::default()
        })
        .run()
        .expect("deadlock is a result, not an error");
    assert_eq!(result.outcome, RunOutcome::Deadlocked);

    let text = std::fs::read_to_string(dir.join("wf-naive-uniform-l0.70-s1993.waitfor.jsonl"))
        .expect("deadlocked run writes a wait-for snapshot");
    let mut snapshots = Vec::new();
    for value in json::StreamDeserializer::new(&text) {
        snapshots.push(WaitForSnapshot::from_json(&value.unwrap()).unwrap());
    }
    assert_eq!(snapshots.len(), 1, "one snapshot per watchdog trigger");
    let snapshot = &snapshots[0];
    assert_eq!(snapshot.reason, "deadlocked");
    assert!(snapshot.live_messages > 0);
    assert!(snapshot.flits_in_flight > 0);
    assert!(
        !snapshot.edges.is_empty(),
        "stalled worms wait on resources"
    );
    assert!(
        snapshot.cycle_found,
        "a real deadlock shows a channel cycle, got edges: {:?}",
        snapshot.edges.len()
    );
    assert!(
        snapshot.cycle_messages.len() >= 2,
        "a cycle needs >= 2 worms"
    );
    assert_eq!(
        snapshot.cycle_messages.len(),
        snapshot.cycle_channels.len(),
        "each cycle hop names the channel it waits through"
    );
    // Every cycle hop is backed by a recorded edge: message i waits on
    // channel i, held by message i+1 (wrapping).
    for (i, (&msg, &ch)) in snapshot
        .cycle_messages
        .iter()
        .zip(snapshot.cycle_channels.iter())
        .enumerate()
    {
        let next = snapshot.cycle_messages[(i + 1) % snapshot.cycle_messages.len()];
        assert!(
            snapshot
                .edges
                .iter()
                .any(|e| e.msg == msg && e.channel == ch && e.holder == next),
            "cycle hop {msg} --[{ch}]-> {next} missing from the edge list"
        );
    }
    // VC waits dominate a wormhole deadlock, but whatever kinds appear
    // must round-trip.
    assert!(snapshot
        .edges
        .iter()
        .all(|e| matches!(e.kind, WaitKind::Vc | WaitKind::Credit)));

    // The metrics sidecars are written even for deadlocked runs.
    assert!(dir
        .join("wf-naive-uniform-l0.70-s1993.metrics.json")
        .exists());
    assert!(dir
        .join("wf-naive-uniform-l0.70-s1993.heatmap.csv")
        .exists());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A transient partition end to end: the two outgoing links of a mesh
/// corner die mid-stream, which severs the worm in flight and parks the
/// still-queued messages behind it (their destinations became
/// unreachable); the repair unparks them, and the run completes — no
/// watchdog, no hang, no lost queued traffic.
#[test]
fn transient_partition_parks_messages_until_repair_then_completes() {
    use wormsim::engine::NetworkBuilder;
    let topo = Topology::mesh(&[4, 4]);
    let corner = topo.node_at(&[0, 0]);
    let mut plan = FaultPlan::new();
    for dim in [0, 1] {
        plan.push(Fault {
            target: FaultTarget::Link {
                node: corner,
                direction: Direction::new(dim, Sign::Plus),
            },
            fail_at: 4,
            repair_at: Some(400),
        });
    }
    let mut net = NetworkBuilder::new(topo.clone(), AlgorithmKind::PositiveHop)
        .faults(plan)
        .congestion_limit(None)
        .seed(SEED)
        .build()
        .expect("network builds");
    net.stop_arrivals();
    // One long worm streaming out of the corner when its only exits die,
    // and a burst queued behind it. Injection drains the queue into free
    // injection VCs immediately, so the burst must be deeper than the VC
    // count to leave messages in the source queue at the fault transition
    // — those are the ones that park instead of dying.
    net.inject(corner, topo.node_at(&[3, 3]), 24);
    for i in 0..12u16 {
        net.inject(corner, topo.node_at(&[1 + i % 3, 3 - i % 2]), 4);
    }
    net.run(50);
    assert!(
        net.metrics().messages_aborted >= 1,
        "in-flight worms are severed"
    );
    let parked = net.parked_messages();
    assert!(
        parked >= 1,
        "queued messages with unreachable destinations park"
    );
    assert!(
        net.run_until_empty(2_000),
        "the repair at cycle 400 must unpark and drain the network"
    );
    assert_eq!(net.parked_messages(), 0);
    assert!(
        net.metrics().delivered >= parked as u64,
        "every parked message completes after the repair"
    );
    assert!(net.deadlock_report().is_none());
}

/// Transient faults (fail at cycle 2000, repair at 4000) on top of static
/// link kills: adaptive and deterministic routing both produce bit-identical
/// results under seed 1993, including the fault bookkeeping.
#[test]
fn transient_fault_runs_match_golden() {
    let topo = Topology::torus(&[8, 8]);
    let mut lines = Vec::new();
    for algorithm in [AlgorithmKind::Ecube, AlgorithmKind::PositiveHop] {
        let result = Experiment::new(topo.clone(), algorithm)
            .faults(transient_plan(&topo))
            .offered_load(0.2)
            .quick()
            .seed(SEED)
            .run()
            .expect("fault plan is valid");
        lines.push(fault_result_json(&result));
    }
    let mut snapshot = lines.join("\n");
    snapshot.push('\n');
    assert_matches_golden("faults_transient_seed1993.jsonl", &snapshot);
}

/// The same fault-mode experiment twice in-process: equality is the cheap
/// half of the determinism guarantee the golden extends across builds.
#[test]
fn repeated_fault_runs_are_identical() {
    let topo = Topology::torus(&[8, 8]);
    let run = || {
        let r = Experiment::new(topo.clone(), AlgorithmKind::NegativeHopBonusCards)
            .faults(transient_plan(&topo))
            .offered_load(0.3)
            .quick()
            .seed(SEED)
            .run()
            .expect("runs");
        fault_result_json(&r)
    };
    assert_eq!(run(), run());
}

//! Workspace acceptance tests for the adversarial safety verification
//! stack: the `wormsim-verify` bounded checker cross-validated against
//! the CDG analysis and the real engine, three ways.
//!
//! * A bounded-checker [`DeadlockWitness`] is not a paper artifact: its
//!   worms, replayed as real traffic with aligned injection timing,
//!   genuinely wedge the engine — for 2pn (the published 2D variant the
//!   checker refuted) and for the naive strawman. The first deadlocking
//!   seed is pinned, so these double as determinism tests.
//! * Agreement properties: a clean masked CDG implies a `ProvenFree`
//!   bounded-checker verdict, and a `ProvenFree` verdict implies no
//!   engine stall ever triages as a confirmed circular wait.
//! * The adversary's minimized fault plans are real: the pinned phop
//!   single-fault refutation replayed through a full `Experiment` leaves
//!   evidence the run records.
//!
//! [`DeadlockWitness`]: wormsim::verify::DeadlockWitness

use proptest::prelude::*;
use wormsim::engine::{NetworkBuilder, SelectionPolicy};
use wormsim::routing::deadlock::analyze_masked;
use wormsim::topology::Topology;
use wormsim::verify::{
    check, check_masked, search_faults, triage, AdversaryConfig, CheckReport, SafetyVerdict,
    TriageReport,
};
use wormsim::{AlgorithmKind, Experiment, FaultPlan, RunOutcome};

/// Replays the checker's witness for `kind` on the 4×4 torus as real
/// traffic: each witness worm is injected (length 2, so the header runs
/// ahead while the tail still pins the injection VC) with its start
/// offset chosen so all final channel acquisitions align, under random VC
/// selection. Scans `seeds` and returns the static report plus the first
/// seed whose run the watchdog declared deadlocked, with its triage.
fn replay_witness(
    kind: AlgorithmKind,
    seeds: std::ops::Range<u64>,
) -> (CheckReport, Option<(u64, TriageReport)>) {
    let topo = Topology::torus(&[4, 4]);
    let algo = kind.build(&topo).expect("algorithm builds");
    let report = check(&topo, algo.as_ref()).expect("network is small enough");
    let max_len = {
        let SafetyVerdict::Deadlock(witness) = &report.verdict else {
            panic!("{kind:?} must have a witness to replay");
        };
        witness.worms.iter().map(|w| w.path.len()).max().unwrap()
    };
    for seed in seeds {
        let mut net = NetworkBuilder::new(topo.clone(), kind)
            .congestion_limit(None)
            .selection(SelectionPolicy::Random)
            .watchdog_cycles(200)
            .seed(seed)
            .build()
            .expect("network builds");
        net.stop_arrivals();
        let SafetyVerdict::Deadlock(witness) = &report.verdict else {
            unreachable!();
        };
        for t in 0..max_len {
            for worm in &witness.worms {
                if max_len - worm.path.len() == t {
                    net.inject(worm.src, worm.dest, 2);
                }
            }
            net.step();
        }
        if !net.run_until_empty(1_000) && net.deadlock_report().is_some() {
            let verdict = triage(&net.wait_for_snapshot("replay"));
            return (report, Some((seed, verdict)));
        }
    }
    (report, None)
}

fn assert_replay_confirms(kind: AlgorithmKind, scan: std::ops::Range<u64>, pinned_seed: u64) {
    let (report, hit) = replay_witness(kind, scan);
    let (seed, verdict) = hit.expect("the witness must be dynamically reachable");
    assert_eq!(
        seed, pinned_seed,
        "first deadlocking seed is deterministic in the replay schedule"
    );
    assert!(
        verdict.is_confirmed_unsafe(),
        "a genuine deadlock must triage as a validated circular wait: {verdict:?}"
    );
    assert!(verdict.cycle_messages.len() >= 2);
    // The engine's observed cycle lives inside the checker's surviving
    // configuration set — the static and dynamic analyses agree on
    // *which* channels can wedge.
    for channel in &verdict.cycle_channels {
        assert!(
            report.survivor_channels.contains(channel),
            "engine cycle channel {channel} missing from checker survivors {:?}",
            report.survivor_channels
        );
    }
}

/// The checker's 2pn refutation on the published 2D torus variant is not
/// static pessimism: the witness deadlocks the real engine.
#[test]
fn two_pn_checker_witness_deadlocks_the_real_engine() {
    assert_replay_confirms(AlgorithmKind::TwoPowerN, 0..2_100, 2_018);
}

/// Same dynamic confirmation for the naive strawman's witness.
#[test]
fn naive_checker_witness_deadlocks_the_real_engine() {
    assert_replay_confirms(AlgorithmKind::NaiveMinimal, 0..3_700, 3_652);
}

/// The adversary's pinned phop refutation is a real failure, and of the
/// exact kind only the bounded checker predicts: the minimized
/// single-fault plan wedges a loaded run — the watchdog fires — yet the
/// wait-for snapshot holds **no** validated channel cycle (the stall is a
/// stranded worm holding its channels forever, with everyone else queued
/// behind it in a chain), and the masked CDG is acyclic too. Triage
/// therefore reads `budget_artifact`; the refutation's `stranded > 0`
/// plus `masked_cyclic == false` is the only analysis that explains the
/// wedge.
#[test]
fn adversary_refutation_plan_wedges_a_real_run_without_a_cycle() {
    let topo = Topology::torus(&[4, 4]);
    let algo = AlgorithmKind::PositiveHop.build(&topo).unwrap();
    let config = AdversaryConfig {
        max_faults: 1,
        ..AdversaryConfig::default()
    };
    let report = search_faults(&topo, algo.as_ref(), &config).unwrap();
    // The empty plan is proven free; every one of the 64 single-link
    // plans on the 4x4 torus strands some minimal-only worm.
    assert_eq!(report.plans_tried, 65);
    assert_eq!(report.plans_refuted, 64);
    let refutation = &report.refutations[0];
    assert_eq!(refutation.plan.len(), 1);
    assert!(refutation.stranded > 0, "stranding is phop's failure mode");
    assert!(
        !refutation.masked_cyclic,
        "the masked CDG must be blind to this refutation"
    );

    // Rebuild the minimized plan as a static fault and run it for real.
    let mut plan = FaultPlan::new();
    for fault in refutation.plan.faults() {
        plan.push(*fault);
    }
    let result = Experiment::new(topo, AlgorithmKind::PositiveHop)
        .faults(plan)
        .offered_load(0.6)
        .congestion_limit(None)
        .quick()
        .watchdog_cycles(1_000)
        .seed(1)
        .run()
        .expect("fault plan is valid");
    assert_eq!(result.outcome, RunOutcome::Deadlocked);
    let verdict = result.triage.expect("stalled runs are always triaged");
    assert!(
        !verdict.is_confirmed_unsafe(),
        "a stranded-holder wedge has no circular wait; got {verdict:?}"
    );
}

fn arb_small_setup() -> impl Strategy<Value = (Topology, AlgorithmKind)> {
    let topo = prop_oneof![
        Just(Topology::torus(&[4, 4])),
        Just(Topology::torus(&[3, 3])),
        Just(Topology::mesh(&[4, 4])),
        Just(Topology::mesh(&[3, 3])),
        Just(Topology::torus(&[2, 4, 4])),
    ];
    let kind = prop_oneof![
        Just(AlgorithmKind::Ecube),
        Just(AlgorithmKind::NorthLast),
        Just(AlgorithmKind::TwoPowerN),
        Just(AlgorithmKind::PositiveHop),
        Just(AlgorithmKind::NegativeHop),
        Just(AlgorithmKind::NegativeHopBonusCards),
        Just(AlgorithmKind::WestFirst),
        Just(AlgorithmKind::NaiveMinimal),
    ];
    (topo, kind)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Duato-criterion soundness, healthy networks: an acyclic CDG (with
    /// nothing stranded — vacuous on a full mask) implies the bounded
    /// checker proves deadlock freedom. The converse is deliberately
    /// *not* asserted: five of the paper's algorithms have a cyclic CDG
    /// yet are proven free — that gap is the checker's reason to exist.
    #[test]
    fn clean_cdg_implies_proven_free((topo, kind) in arb_small_setup()) {
        let algo = match kind.build(&topo) {
            Ok(a) => a,
            Err(_) => return Ok(()), // e.g. nhop on an odd-radius torus
        };
        let mask = wormsim::topology::ChannelMask::all_alive(&topo);
        let masked = analyze_masked(&topo, &mask, algo.as_ref());
        prop_assume!(masked.is_clean());
        let report = check(&topo, algo.as_ref()).unwrap();
        prop_assert_eq!(
            &report.verdict,
            &SafetyVerdict::ProvenFree,
            "acyclic CDG but the checker found a witness on {} / {:?}",
            topo.label(),
            kind
        );
    }

    /// Masked three-way agreement on the 4×4 torus: for a random ≤2-fault
    /// plan, a clean masked CDG implies the masked bounded checker proves
    /// freedom; and whenever the checker proves freedom, a loaded engine
    /// run under the same faults never produces a stall that triages as a
    /// validated circular wait.
    #[test]
    fn masked_verdicts_agree_with_the_engine(
        kind in prop_oneof![
            Just(AlgorithmKind::Ecube),
            Just(AlgorithmKind::PositiveHop),
            Just(AlgorithmKind::NegativeHopBonusCards),
        ],
        faults in proptest::collection::vec((0u32..16, 0usize..2, prop::bool::ANY), 0..=2),
        seed in 0u64..1_000,
    ) {
        let topo = Topology::torus(&[4, 4]);
        let algo = kind.build(&topo).unwrap();
        let mut plan = FaultPlan::new();
        for (node, dim, plus) in faults {
            let sign = if plus {
                wormsim::topology::Sign::Plus
            } else {
                wormsim::topology::Sign::Minus
            };
            plan.push_dead_link(
                wormsim::NodeId::new(node),
                wormsim::topology::Direction::new(dim, sign),
            );
        }
        prop_assume!(plan.validate(&topo).is_ok());
        let mask = plan.mask_at(&topo, 0);
        let masked_cdg = analyze_masked(&topo, &mask, algo.as_ref());
        let checked = check_masked(&topo, &mask, algo.as_ref()).unwrap();
        if masked_cdg.is_clean() {
            prop_assert_eq!(
                &checked.verdict,
                &SafetyVerdict::ProvenFree,
                "clean masked CDG but a witness exists under {:?} / {:?}",
                plan,
                kind
            );
        }
        if checked.verdict == SafetyVerdict::ProvenFree {
            let result = Experiment::new(topo, kind)
                .faults(plan)
                .offered_load(0.5)
                .congestion_limit(None)
                .quick()
                .watchdog_cycles(500)
                .cycle_budget(Some(20_000))
                .seed(seed)
                .run()
                .unwrap();
            let confirmed = result
                .triage
                .as_ref()
                .is_some_and(TriageReport::is_confirmed_unsafe);
            prop_assert!(
                !confirmed,
                "checker proved freedom but the engine triaged a validated \
                 cycle: outcome {:?}, seed {seed}",
                result.outcome
            );
        }
    }
}

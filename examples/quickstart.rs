//! Quickstart: measure one routing algorithm at one load and print the
//! paper-style numbers.
//!
//! Run with: `cargo run --release --example quickstart`

use wormsim::{format_results_table, AlgorithmKind, Experiment, Topology, TrafficConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's network: a 16x16 torus carrying 16-flit worms.
    let topo = Topology::torus(&[16, 16]);

    // Compare the best fully adaptive scheme (phop) with plain e-cube at a
    // moderate 30% offered load under uniform traffic.
    let mut results = Vec::new();
    for algorithm in [AlgorithmKind::PositiveHop, AlgorithmKind::Ecube] {
        let result = Experiment::new(topo.clone(), algorithm)
            .traffic(TrafficConfig::Uniform)
            .offered_load(0.3)
            .seed(1)
            .run()?;
        println!(
            "{:>6}: latency {} cycles, achieved utilization {:.3} ({} messages, {} samples)",
            result.algorithm,
            result.latency,
            result.achieved_utilization,
            result.messages_measured,
            result.samples,
        );
        results.push(result);
    }

    println!("\n{}", format_results_table(&results));

    // The zero-load baseline from the paper's Equation 2 for context:
    // 16 flits over an average 8.03 hops = 23.03 cycles.
    let zero_load = wormsim::stats::throughput::zero_load_latency(16.0, 8.03, 1.0);
    println!("zero-load latency (Eq. 2): {zero_load:.2} cycles");
    Ok(())
}

//! Hotspot study: what a single hot node (a lock home, say) does to each
//! routing algorithm — a slice of the paper's Figure 4.
//!
//! Run with: `cargo run --release --example hotspot_analysis`

use wormsim::{AlgorithmKind, Experiment, Topology, TrafficConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = Topology::torus(&[16, 16]);
    let hotspot = TrafficConfig::Hotspot {
        nodes: vec![vec![15, 15]],
        fraction: 0.04,
    };

    // How much hotter is the hot node? (The paper quotes 11.5x.)
    let pattern = hotspot.build(&topo)?;
    let dist = pattern.dest_distribution(topo.node_at(&[0, 0]));
    let hot = dist[topo.node_at(&[15, 15]).as_usize()];
    let cold = dist[topo.node_at(&[1, 0]).as_usize()];
    println!(
        "hotspot node receives {:.1}x the traffic of any other node\n",
        hot / cold
    );

    println!(
        "{:>6} | {:>16} {:>16} | {:>9}",
        "algo", "latency @0.2", "latency @0.4", "peak util"
    );
    for algorithm in [
        AlgorithmKind::NegativeHopBonusCards,
        AlgorithmKind::PositiveHop,
        AlgorithmKind::Ecube,
        AlgorithmKind::NorthLast,
    ] {
        let base = Experiment::new(topo.clone(), algorithm)
            .traffic(hotspot.clone())
            .seed(4);
        let low = base.clone().offered_load(0.2).run()?;
        let mid = base.clone().offered_load(0.4).run()?;
        let peak = base
            .sweep(&[0.3, 0.4, 0.5, 0.6])?
            .iter()
            .map(|r| r.achieved_utilization)
            .fold(0.0f64, f64::max);
        println!(
            "{:>6} | {:>13.1} cy {:>13.1} cy | {:>9.3}",
            low.algorithm,
            low.latency.mean(),
            mid.latency.mean(),
            peak
        );
    }
    println!(
        "\nThe paper's Figure 4 shape: hotspot traffic saturates e-cube and\n\
         north-last early (~0.25), while the hop schemes keep climbing to ~0.5."
    );
    Ok(())
}

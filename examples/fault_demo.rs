//! Fault-injection tour: kill one torus link mid-run and watch each
//! algorithm cope (or fail to).
//!
//! Every algorithm runs the same 8x8 torus workload twice — once healthy,
//! once with a single link dying a quarter of the way into measurement —
//! and the demo prints the [`RunOutcome`] and the latency/throughput cost
//! of the damage. E-cube owns exactly one path per source/destination
//! pair, so the dead link strands every message routed across it; the
//! adaptive algorithms misroute around it and pay only a latency tax.
//!
//! Run with: `cargo run --release --example fault_demo`

use wormsim::faults::{Fault, FaultPlan, FaultTarget};
use wormsim::topology::{Direction, Sign, Topology};
use wormsim::{AlgorithmKind, Experiment, RunResult};

const SEED: u64 = 1993;
const LOAD: f64 = 0.2;

/// One link in the middle of the torus dies at cycle 2000 and never
/// recovers. Everything already committed across it is aborted; everything
/// after must live without it.
fn one_dead_link(topo: &Topology) -> FaultPlan {
    let mut plan = FaultPlan::new();
    plan.push(Fault {
        target: FaultTarget::Link {
            node: topo.node_at(&[3, 3]),
            direction: Direction::new(0, Sign::Plus),
        },
        fail_at: 2_000,
        repair_at: None,
    });
    plan
}

fn run(topo: &Topology, algorithm: AlgorithmKind, faults: Option<FaultPlan>) -> RunResult {
    let mut experiment = Experiment::new(topo.clone(), algorithm)
        .offered_load(LOAD)
        .quick()
        .seed(SEED);
    if let Some(plan) = faults {
        experiment = experiment.faults(plan);
    }
    experiment.run().expect("demo configuration is valid")
}

fn main() {
    let topo = Topology::torus(&[8, 8]);
    println!(
        "One link (node (3,3), +x) dies at cycle 2000 on {topo} at load {LOAD:.2}, seed {SEED}.\n"
    );
    println!(
        "{:>6} {:>11} {:>14} {:>14} {:>14}",
        "algo", "outcome", "latency", "msgs/node/cyc", "latency delta"
    );
    for algorithm in [
        AlgorithmKind::Ecube,
        AlgorithmKind::PositiveHop,
        AlgorithmKind::NegativeHop,
        AlgorithmKind::NegativeHopBonusCards,
    ] {
        let healthy = run(&topo, algorithm, None);
        let damaged = run(&topo, algorithm, Some(one_dead_link(&topo)));
        let latency = if damaged.outcome.has_statistics() {
            format!("{:.1}", damaged.latency.mean())
        } else {
            "-".to_owned()
        };
        let delta = if damaged.outcome.has_statistics() {
            format!("{:+.1}", damaged.latency.mean() - healthy.latency.mean())
        } else {
            "-".to_owned()
        };
        println!(
            "{:>6} {:>11} {:>14} {:>14.4} {:>14}",
            algorithm.name(),
            damaged.outcome.tag(),
            latency,
            damaged.delivery_rate,
            delta,
        );
    }
    println!(
        "\nA '-' means the damaged run produced no statistics (it wedged or \
         was cut off); the adaptive rows should show a small positive latency \
         delta instead — the price of routing around the hole."
    );
}

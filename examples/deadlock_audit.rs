//! Deadlock audit: machine-check the channel-dependency graph of every
//! algorithm, then *watch* the naive single-class strawman actually
//! deadlock in simulation while the studied algorithms survive.
//!
//! Run with: `cargo run --release --example deadlock_audit`

use wormsim::routing::{deadlock, AlgorithmKind};
use wormsim::{ArrivalProcess, MessageLength, NetworkBuilder, Topology, TrafficConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Part 1: static analysis (the paper's Lemma 1, executable).
    let topo = Topology::torus(&[6, 6]);
    println!("channel-dependency graphs on a 6x6 torus:");
    let mut kinds = AlgorithmKind::all().to_vec();
    kinds.push(AlgorithmKind::NaiveMinimal);
    for kind in kinds {
        let algo = kind.build(&topo)?;
        let report = deadlock::analyze(&topo, algo.as_ref());
        let verdict = if report.is_acyclic() {
            "ACYCLIC  (provably deadlock-free)"
        } else if kind == AlgorithmKind::NaiveMinimal {
            "CYCLIC   (and it really deadlocks, see below)"
        } else {
            "CYCLIC   (inconclusive; fully adaptive escape paths)"
        };
        println!(
            "  {:>6}: {:>5} vcs, {:>5} deps  {}",
            kind.name(),
            report.vertices(),
            report.edges(),
            verdict
        );
    }

    // Part 2: dynamic evidence under heavy load on an 8x8 torus.
    println!("\nsaturation stress (8x8 torus, offered >> capacity, 30k cycles):");
    let mut kinds = AlgorithmKind::all().to_vec();
    kinds.push(AlgorithmKind::NaiveMinimal);
    for kind in kinds {
        let mut net = NetworkBuilder::new(Topology::torus(&[8, 8]), kind)
            .traffic(TrafficConfig::Uniform)
            .arrival(ArrivalProcess::geometric(0.05)?)
            .message_length(MessageLength::fixed(16)?)
            .watchdog_cycles(5_000)
            .seed(3)
            .build()?;
        net.run(30_000);
        match net.deadlock_report() {
            None => println!(
                "  {:>6}: delivered {:>6} messages, no deadlock",
                kind.name(),
                net.metrics().delivered
            ),
            Some(report) => println!(
                "  {:>6}: DEADLOCK at cycle {} with {} flits wedged",
                kind.name(),
                report.detected_at,
                report.flits_in_flight
            ),
        }
    }
    Ok(())
}

//! Extending the simulator with your own routing algorithm.
//!
//! Implements **negative-first** — a third member of the Glass–Ni turn
//! model family (all `-`-direction travel happens before any
//! `+`-direction travel) — entirely outside the library, audits its
//! dependency graph, and races it against the built-in turn-model
//! algorithms on the paper's torus.
//!
//! Run with: `cargo run --release --example custom_algorithm`

use wormsim::engine::Network;
use wormsim::routing::{
    deadlock, Adaptivity, AlgorithmKind, Candidate, MessageRouteState, RoutingAlgorithm,
};
use wormsim::topology::{DimStep, Direction, NodeId, Sign, Topology};
use wormsim::{ArrivalProcess, MessageLength, NetworkBuilder, TrafficConfig};

/// Negative-first: route adaptively among the `-`-direction minimal hops
/// until none remain, then adaptively among the `+`-direction hops — so no
/// turn from a positive to a negative direction ever occurs. Torus
/// wrap-around uses the dateline-crossing-count classes shared by the
/// library's turn-model algorithms.
#[derive(Debug)]
struct NegativeFirst {
    classes: usize,
}

impl NegativeFirst {
    fn new(topo: &Topology) -> Self {
        NegativeFirst {
            classes: if topo.wraps() { topo.num_dims() + 1 } else { 1 },
        }
    }
}

impl RoutingAlgorithm for NegativeFirst {
    fn name(&self) -> &'static str {
        "nfirst"
    }

    fn adaptivity(&self) -> Adaptivity {
        Adaptivity::PartiallyAdaptive
    }

    fn num_vc_classes(&self) -> usize {
        self.classes
    }

    fn candidates(
        &self,
        topo: &Topology,
        state: &MessageRouteState,
        here: NodeId,
        out: &mut Vec<Candidate>,
    ) {
        let class = state.datelines_crossed() as u8;
        // Phase 1: adaptive among strictly-negative minimal directions.
        // (Half-radix ties count as positive so they never re-enter the
        // negative phase.)
        for dim in 0..topo.num_dims() {
            if let DimStep::One {
                sign: Sign::Minus, ..
            } = topo.dim_step(here, state.dest(), dim)
            {
                out.push(Candidate::new(Direction::new(dim, Sign::Minus), class));
            }
        }
        if !out.is_empty() {
            return;
        }
        // Phase 2: adaptive among positive minimal directions.
        for dim in 0..topo.num_dims() {
            let step = topo.dim_step(here, state.dest(), dim);
            if step.allows(Sign::Plus) {
                out.push(Candidate::new(Direction::new(dim, Sign::Plus), class));
            }
        }
    }

    fn injection_class(&self, topo: &Topology, state: &MessageRouteState) -> u32 {
        let mut out = Vec::with_capacity(4);
        self.candidates(topo, state, state.src(), &mut out);
        out.first().map_or(0, |c| c.direction().index() as u32)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Audit the dependency graph before trusting it with traffic.
    for dims in [[4u16, 4u16], [6, 6]] {
        let small = Topology::torus(&dims);
        let report = deadlock::analyze(&small, &NegativeFirst::new(&small));
        println!(
            "negative-first CDG on {}x{} torus: {} ({} vcs, {} deps)",
            dims[0],
            dims[1],
            if report.is_acyclic() {
                "acyclic"
            } else {
                "CYCLIC"
            },
            report.vertices(),
            report.edges()
        );
    }

    // Race it against the built-in turn-model algorithms at 30% offered
    // uniform load.
    let topo = Topology::torus(&[16, 16]);
    let pattern_cfg = TrafficConfig::Uniform;
    let rate = wormsim::stats::throughput::rate_for_utilization(
        0.3,
        16.0,
        pattern_cfg.build(&topo)?.mean_distance(&topo),
        topo.num_dims(),
    );

    println!("\nuniform traffic at offered 0.3 on 16x16 torus, 30k cycles:");
    // Built-ins go through the normal builder...
    for kind in [
        AlgorithmKind::NorthLast,
        AlgorithmKind::WestFirst,
        AlgorithmKind::Ecube,
    ] {
        let mut net = NetworkBuilder::new(topo.clone(), kind)
            .arrival(ArrivalProcess::geometric(rate)?)
            .message_length(MessageLength::fixed(16)?)
            .seed(11)
            .build()?;
        net.run(30_000);
        report_net(&mut net);
    }
    // ...while the custom algorithm enters through Network::with_parts.
    let cfg = NetworkBuilder::new(topo.clone(), AlgorithmKind::Ecube)
        .arrival(ArrivalProcess::geometric(rate)?)
        .message_length(MessageLength::fixed(16)?)
        .seed(11)
        .into_config();
    let mut net = Network::with_parts(
        cfg,
        Box::new(NegativeFirst::new(&topo)),
        pattern_cfg.build(&topo)?,
    )?;
    net.run(30_000);
    report_net(&mut net);
    Ok(())
}

fn report_net(net: &mut Network) {
    let delivered = net.drain_delivered();
    let mean =
        delivered.iter().map(|m| m.latency as f64).sum::<f64>() / delivered.len().max(1) as f64;
    println!(
        "  {:>6}: {:>6} delivered, mean latency {:>6.1} cycles, util {:.3}{}",
        net.algorithm().name(),
        delivered.len(),
        mean,
        net.metrics()
            .channel_utilization(net.num_network_channels()),
        if net.deadlock_report().is_some() {
            "  DEADLOCK"
        } else {
            ""
        }
    );
}

//! Observability tour: run a short observed experiment, then reconstruct
//! the run from its manifest and JSONL sample stream alone.
//!
//! The observed run writes its artifacts next to each other:
//!
//! * `<run>.manifest.json` — config hash, seeds, phase timings, throughput
//! * `<run>.samples.jsonl` — one time-series sample per stride
//! * `<run>.trace.jsonl` — per-message lifecycle events
//! * `<run>.metrics.json` — per-channel counters and the latency histogram
//! * `<run>.heatmap.csv` — per-node channel utilization on the node grid
//!
//! Run with: `cargo run --release --example observe_demo`

use wormsim::observe::{json, MetricsReport};
use wormsim::{
    AlgorithmKind, Experiment, ObserveConfig, RunManifest, Sample, Topology, TrafficConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("wormsim-observe-demo-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;

    // The paper's 16x16 torus at 30% offered load, observed: samples every
    // 500 cycles plus a full event trace.
    let result = Experiment::new(
        Topology::torus(&[16, 16]),
        AlgorithmKind::NegativeHopBonusCards,
    )
    .traffic(TrafficConfig::Uniform)
    .offered_load(0.3)
    .quick()
    .seed(1993)
    .observe(ObserveConfig {
        out_dir: Some(dir.clone()),
        trace_dir: Some(dir.clone()),
        sample_every: 500,
        prefix: "demo".to_owned(),
        metrics: true,
    })
    .run()?;
    println!(
        "run finished: latency {} cycles, {} messages, {:.0} cycles/s simulated",
        result.latency, result.messages_measured, result.cycles_per_sec
    );

    // Everything below uses only the files the run left behind.
    let run_id = "demo-nbc-uniform-l0.30-s1993";
    let manifest = RunManifest::read_from(dir.join(format!("{run_id}.manifest.json")))
        .map_err(std::io::Error::other)?;
    println!("\nmanifest {}:", manifest.run_id);
    println!("  config hash   {}", manifest.config_hash);
    println!("  seed          {}", manifest.seed);
    println!(
        "  cycles        {} ({} warmup)",
        manifest.cycles, manifest.warmup_cycles
    );
    println!("  wall seconds  {:.3}", manifest.wall_seconds);
    println!("  flits/sec     {:.0}", manifest.flits_per_sec);
    for phase in &manifest.phases {
        println!(
            "  phase {:>7}: {:>8} cycles in {:.3}s",
            phase.name, phase.cycles, phase.wall_seconds
        );
    }

    let text = std::fs::read_to_string(dir.join(format!("{run_id}.samples.jsonl")))?;
    let mut samples = Vec::new();
    for value in json::StreamDeserializer::new(&text) {
        samples.push(Sample::from_json(&value?).map_err(std::io::Error::other)?);
    }

    // Per-VC-class flit load over time: adaptive algorithms should spread
    // load across their classes, e-cube-style waterfalls concentrate it.
    let classes = samples.first().map_or(0, |s| s.class_flits.len());
    println!("\nper-class flit load (flits forwarded per window):");
    print!("{:>8} {:>9}", "cycle", "latency");
    for class in 0..classes {
        print!("{:>9}", format!("class{class}"));
    }
    println!("{:>10}", "in-flight");
    for sample in &samples {
        let latency = sample
            .mean_latency()
            .map_or_else(|| "-".to_owned(), |l| format!("{l:.1}"));
        print!("{:>8} {latency:>9}", sample.cycle);
        for &flits in &sample.class_flits {
            print!("{flits:>9}");
        }
        println!("{:>10}", sample.flits_in_flight);
    }

    let busiest = samples
        .iter()
        .flat_map(|s| s.channel_flits.iter().copied())
        .max()
        .unwrap_or(0);
    println!("\nbusiest single channel in any window: {busiest} flits");

    // The whole-run metrics report: latency percentiles straight from the
    // power-of-two histogram, plus channel-utilization aggregates.
    let report = MetricsReport::read_from(dir.join(format!("{run_id}.metrics.json")))
        .map_err(std::io::Error::other)?;
    println!("\nmetrics report over {} cycles:", report.cycles);
    println!(
        "  latency p50/p95/p99  {}/{}/{} cycles ({} messages)",
        report.latency.p50, report.latency.p95, report.latency.p99, report.latency.count
    );
    println!(
        "  channel utilization  mean {:.4}, peak {:.4} flits/cycle",
        report.mean_channel_utilization, report.peak_channel_utilization
    );
    let blocked: u64 = report.channel_blocked.iter().sum();
    let failed: u64 = report.channel_alloc_fail.iter().sum();
    println!("  contention           {blocked} blocked cycles, {failed} VC-allocation misses");
    println!("artifacts in {}", dir.display());
    Ok(())
}

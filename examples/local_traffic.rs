//! Local-traffic study: nearest-neighbor style communication (stencils,
//! domain decomposition) in the paper's 7x7-neighborhood model — a slice
//! of Figure 5.
//!
//! Run with: `cargo run --release --example local_traffic`

use wormsim::{AlgorithmKind, Experiment, Topology, TrafficConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = Topology::torus(&[16, 16]);
    let local = TrafficConfig::Local { radius: 3 };

    // The paper's hop-class weights for this pattern (Section 3, footnote):
    // classes 1 and 6 get 0.0833, 2 and 5 get 0.1667, 3 and 4 get 0.25.
    let pattern = local.build(&topo)?;
    let weights = pattern.hop_class_weights(&topo);
    println!("hop-class weights under local traffic:");
    for (h, w) in weights.iter().enumerate().filter(|(_, w)| **w > 0.0) {
        println!("  class {h}: {w:.4}");
    }
    println!(
        "mean distance: {:.2} hops (vs 8.03 uniform)\n",
        pattern.mean_distance(&topo)
    );

    // Short paths change the picture: 2pn beats e-cube here (the paper's
    // Figure 5), because adaptivity helps and wrap-around rarely matters.
    println!("{:>6} | {:>14} {:>14}", "algo", "latency @0.3", "util @0.5");
    for algorithm in [
        AlgorithmKind::PositiveHop,
        AlgorithmKind::TwoPowerN,
        AlgorithmKind::Ecube,
        AlgorithmKind::NorthLast,
    ] {
        let base = Experiment::new(topo.clone(), algorithm)
            .traffic(local.clone())
            .seed(9);
        let a = base.clone().offered_load(0.3).run()?;
        let b = base.clone().offered_load(0.5).run()?;
        println!(
            "{:>6} | {:>11.1} cy {:>14.3}",
            a.algorithm,
            a.latency.mean(),
            b.achieved_utilization
        );
    }
    Ok(())
}

//! Workspace-level integration-test and example host for `wormsim`.
//!
//! The real functionality lives in the [`wormsim`] crate; this package only
//! exists so that `examples/` and `tests/` at the repository root have a
//! Cargo target to attach to.

pub use wormsim as sim;
